//! Deterministic fault injection over durability I/O, plus the atomic
//! file writer built on it.
//!
//! Every byte the durability subsystem puts on disk flows through a
//! [`FaultInjector`]: file creation, payload writes, syncs, and the
//! final renames of atomic writes. The injector counts those operations
//! and, when armed with a [`FaultPlan`], fails exactly one of them in a
//! chosen [`FaultMode`] — an I/O error, a short write, or a simulated
//! process crash after which *every* subsequent operation through the
//! same injector fails (the process is "dead"; nothing it would have
//! written later can reach the disk). The crash-recovery differential
//! harness (`tests/crash_recovery.rs`) first counts the operations of a
//! fault-free run, then replays the run once per operation index and
//! asserts recovery lands on an atomic pre- or post-commit state — see
//! `docs/DURABILITY.md` for the fault-point catalog.
//!
//! A default-constructed injector is a no-op passthrough (no allocation,
//! no counting), so production call sites pay nothing. External
//! processes (the CLI, `exp_serve`) arm one from the environment via
//! [`FaultInjector::from_env`] and the `SCPM_FAULT=<mode>@<index>`
//! failpoint.
//!
//! [`write_atomic`] is the one durable write primitive the workspace
//! uses: temp file in the target directory → write → fsync → rename.
//! Readers therefore observe either the old file or the new file, never
//! a torn mixture — the rename is the commit point.

use std::fs::{self, File};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// How an armed injector fails the planned operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultMode {
    /// The operation returns an I/O error; the process keeps running
    /// (a full disk, a permissions flip, an EIO).
    Error,
    /// A write persists only the first half of its payload, then
    /// errors; the process keeps running. Non-write operations degrade
    /// to [`FaultMode::Error`].
    ShortWrite,
    /// The operation takes partial effect (writes persist half their
    /// payload; creates/syncs/renames do nothing) and the injector
    /// becomes permanently dead: every later operation fails with a
    /// crash-marked error. This simulates the process dying mid-I/O.
    Crash,
}

impl FaultMode {
    /// Parses the mode names accepted by the `SCPM_FAULT` failpoint.
    pub fn parse(s: &str) -> Option<FaultMode> {
        match s {
            "error" => Some(FaultMode::Error),
            "short" => Some(FaultMode::ShortWrite),
            "crash" => Some(FaultMode::Crash),
            _ => None,
        }
    }
}

/// A single planned fault: fail durability operation number `op_index`
/// (0-based, in injector order) in the given mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// 0-based index of the operation to fail.
    pub op_index: u64,
    /// Failure mode applied at that operation.
    pub mode: FaultMode,
}

struct InjectorState {
    plan: Option<FaultPlan>,
    next_op: AtomicU64,
    crashed: AtomicBool,
}

/// Deterministic fault injector threaded through durability I/O.
///
/// Cloning shares the underlying operation counter, so one injector can
/// be handed to several layers (journal writer, checkpoint path) and
/// still number their operations in a single global sequence.
#[derive(Clone, Default)]
pub struct FaultInjector {
    state: Option<Arc<InjectorState>>,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.state {
            None => write!(f, "FaultInjector(none)"),
            Some(s) => write!(
                f,
                "FaultInjector(plan: {:?}, next_op: {}, crashed: {})",
                s.plan,
                s.next_op.load(Ordering::Relaxed),
                s.crashed.load(Ordering::Relaxed)
            ),
        }
    }
}

/// Marker message carried by injected-crash errors; [`is_injected_crash`]
/// recognizes it after the error has crossed `io::Error` boundaries.
const CRASH_MSG: &str = "scpm fault injection: simulated crash";
const ERROR_MSG: &str = "scpm fault injection: injected i/o error";

/// True if the error was produced by a [`FaultMode::Crash`] injection
/// (directly or by any operation after the simulated crash).
pub fn is_injected_crash(e: &io::Error) -> bool {
    e.to_string().contains(CRASH_MSG)
}

fn crash_error() -> io::Error {
    io::Error::other(CRASH_MSG)
}

fn injected_error() -> io::Error {
    io::Error::other(ERROR_MSG)
}

/// What the gate decided for one operation.
enum Gate {
    /// Run the operation normally.
    Proceed,
    /// Fail it in this mode.
    Fail(FaultMode),
}

impl FaultInjector {
    /// A passthrough injector: operations run directly, nothing counts.
    pub fn none() -> FaultInjector {
        FaultInjector::default()
    }

    /// An injector that counts operations and fails per `plan`.
    ///
    /// Pass `op_index: u64::MAX` to count a fault-free run: the plan
    /// never fires and [`FaultInjector::ops_seen`] reports how many
    /// fault points the run had.
    pub fn plan(plan: FaultPlan) -> FaultInjector {
        FaultInjector {
            state: Some(Arc::new(InjectorState {
                plan: Some(plan),
                next_op: AtomicU64::new(0),
                crashed: AtomicBool::new(false),
            })),
        }
    }

    /// A counting injector with no planned fault (same as a plan that
    /// never fires).
    pub fn counting() -> FaultInjector {
        FaultInjector {
            state: Some(Arc::new(InjectorState {
                plan: None,
                next_op: AtomicU64::new(0),
                crashed: AtomicBool::new(false),
            })),
        }
    }

    /// Reads the `SCPM_FAULT=<mode>@<index>` failpoint from the
    /// environment (`mode` ∈ `error` | `short` | `crash`). Returns a
    /// passthrough injector when unset; malformed values are reported
    /// as an error so a typo cannot silently disable a planned fault.
    pub fn from_env() -> Result<FaultInjector, String> {
        match std::env::var("SCPM_FAULT") {
            Err(_) => Ok(FaultInjector::none()),
            Ok(spec) => {
                let parsed = spec.split_once('@').and_then(|(m, k)| {
                    Some(FaultPlan {
                        mode: FaultMode::parse(m)?,
                        op_index: k.parse().ok()?,
                    })
                });
                match parsed {
                    Some(plan) => Ok(FaultInjector::plan(plan)),
                    None => Err(format!(
                        "invalid SCPM_FAULT {spec:?} (expected <error|short|crash>@<index>)"
                    )),
                }
            }
        }
    }

    /// Number of durability operations gated so far (counting injectors
    /// only; a passthrough reports 0).
    pub fn ops_seen(&self) -> u64 {
        self.state
            .as_ref()
            .map(|s| s.next_op.load(Ordering::Relaxed))
            .unwrap_or(0)
    }

    /// True once a [`FaultMode::Crash`] has fired: the simulated
    /// process is dead and every further operation fails.
    pub fn crashed(&self) -> bool {
        self.state
            .as_ref()
            .map(|s| s.crashed.load(Ordering::Relaxed))
            .unwrap_or(false)
    }

    fn gate(&self) -> io::Result<Gate> {
        let Some(state) = &self.state else {
            return Ok(Gate::Proceed);
        };
        if state.crashed.load(Ordering::Relaxed) {
            return Err(crash_error());
        }
        let op = state.next_op.fetch_add(1, Ordering::Relaxed);
        match state.plan {
            Some(plan) if plan.op_index == op => {
                if plan.mode == FaultMode::Crash {
                    state.crashed.store(true, Ordering::Relaxed);
                }
                Ok(Gate::Fail(plan.mode))
            }
            _ => Ok(Gate::Proceed),
        }
    }

    /// Creates (truncating) a file — one fault point.
    pub fn create(&self, path: &Path) -> io::Result<File> {
        match self.gate()? {
            Gate::Proceed => File::create(path),
            Gate::Fail(FaultMode::Crash) => Err(crash_error()),
            Gate::Fail(_) => Err(injected_error()),
        }
    }

    /// Writes a full payload to an open file — one fault point. Short
    /// writes and crashes persist the first half of `bytes` before
    /// failing, modeling a write torn by the failure.
    pub fn write(&self, file: &mut File, bytes: &[u8]) -> io::Result<()> {
        match self.gate()? {
            Gate::Proceed => file.write_all(bytes),
            Gate::Fail(mode) => {
                let half = bytes.len() / 2;
                match mode {
                    FaultMode::Error => Err(injected_error()),
                    FaultMode::ShortWrite => {
                        file.write_all(&bytes[..half])?;
                        let _ = file.sync_all();
                        Err(injected_error())
                    }
                    FaultMode::Crash => {
                        let _ = file.write_all(&bytes[..half]);
                        let _ = file.sync_all();
                        Err(crash_error())
                    }
                }
            }
        }
    }

    /// Syncs file content and metadata to disk — one fault point.
    pub fn sync(&self, file: &File) -> io::Result<()> {
        match self.gate()? {
            Gate::Proceed => file.sync_all(),
            Gate::Fail(FaultMode::Crash) => Err(crash_error()),
            Gate::Fail(_) => Err(injected_error()),
        }
    }

    /// Renames a file over its final name — one fault point, the commit
    /// point of every atomic write.
    pub fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        match self.gate()? {
            Gate::Proceed => fs::rename(from, to),
            Gate::Fail(FaultMode::Crash) => Err(crash_error()),
            Gate::Fail(_) => Err(injected_error()),
        }
    }
}

fn tmp_sibling(path: &Path) -> io::Result<PathBuf> {
    let name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("atomic write target has no file name: {}", path.display()),
        )
    })?;
    let mut tmp = name.to_os_string();
    tmp.push(".tmp");
    Ok(path.with_file_name(tmp))
}

/// Atomically replaces `path` with `bytes`: write `<name>.tmp` in the
/// same directory, fsync, then rename over the target. A reader (or a
/// crash) observes either the complete old content or the complete new
/// content, never a prefix or a mixture.
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    write_atomic_with(&FaultInjector::none(), path.as_ref(), bytes)
}

/// [`write_atomic`] with fault injection: create, write, sync, and
/// rename are four consecutive fault points. On a non-crash failure the
/// temp file is cleaned up; after a simulated crash it is left behind,
/// exactly as a real crash would leave it (recovery ignores and prunes
/// `*.tmp` debris).
pub fn write_atomic_with(inj: &FaultInjector, path: &Path, bytes: &[u8]) -> io::Result<()> {
    let tmp = tmp_sibling(path)?;
    let result = (|| {
        let mut file = inj.create(&tmp)?;
        inj.write(&mut file, bytes)?;
        inj.sync(&file)?;
        drop(file);
        inj.rename(&tmp, path)
    })();
    if result.is_err() && !inj.crashed() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("scpm_fault_{name}"));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn passthrough_writes_and_counts_nothing() {
        let dir = tdir("passthrough");
        let inj = FaultInjector::none();
        let path = dir.join("f.bin");
        write_atomic_with(&inj, &path, b"hello").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"hello");
        assert_eq!(inj.ops_seen(), 0);
        assert!(!dir.join("f.bin.tmp").exists());
    }

    #[test]
    fn counting_run_reports_four_ops_per_atomic_write() {
        let dir = tdir("count");
        let inj = FaultInjector::counting();
        write_atomic_with(&inj, &dir.join("f.bin"), b"x").unwrap();
        assert_eq!(inj.ops_seen(), 4); // create, write, sync, rename
    }

    #[test]
    fn atomic_write_never_exposes_partial_content() {
        // Whatever single op fails, the target holds old content in full.
        let dir = tdir("atomicity");
        let path = dir.join("f.bin");
        write_atomic(&path, b"old-content").unwrap();
        for op in 0..4 {
            for mode in [FaultMode::Error, FaultMode::ShortWrite, FaultMode::Crash] {
                let inj = FaultInjector::plan(FaultPlan { op_index: op, mode });
                let r = write_atomic_with(&inj, &path, b"NEW-CONTENT");
                if op == 3 && r.is_ok() {
                    // Rename is the commit point; a fault *at* the rename
                    // always fails here, so Ok is unreachable before it.
                    unreachable!();
                }
                assert!(r.is_err(), "op {op} {mode:?} unexpectedly succeeded");
                assert_eq!(
                    fs::read(&path).unwrap(),
                    b"old-content",
                    "op {op} {mode:?} tore the target"
                );
                // Reset for the next round: clear temp debris.
                let _ = fs::remove_file(dir.join("f.bin.tmp"));
            }
        }
        // And with the fault past the end, the write commits.
        let inj = FaultInjector::plan(FaultPlan {
            op_index: u64::MAX,
            mode: FaultMode::Crash,
        });
        write_atomic_with(&inj, &path, b"NEW-CONTENT").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"NEW-CONTENT");
    }

    #[test]
    fn crash_is_sticky_and_marked() {
        let dir = tdir("sticky");
        let inj = FaultInjector::plan(FaultPlan {
            op_index: 0,
            mode: FaultMode::Crash,
        });
        let e = write_atomic_with(&inj, &dir.join("a.bin"), b"a").unwrap_err();
        assert!(is_injected_crash(&e));
        assert!(inj.crashed());
        // The "process" is dead: every later operation fails too.
        let e2 = write_atomic_with(&inj, &dir.join("b.bin"), b"b").unwrap_err();
        assert!(is_injected_crash(&e2));
        assert!(!dir.join("b.bin").exists());
    }

    #[test]
    fn short_write_persists_half_then_errors() {
        let dir = tdir("short");
        let inj = FaultInjector::plan(FaultPlan {
            op_index: 1, // the payload write of the first atomic write
            mode: FaultMode::ShortWrite,
        });
        let path = dir.join("f.bin");
        let e = write_atomic_with(&inj, &path, b"0123456789").unwrap_err();
        assert!(!is_injected_crash(&e));
        // Target never appeared; the torn payload only ever hit the temp
        // file, which the error path removed.
        assert!(!path.exists());
        assert!(!dir.join("f.bin.tmp").exists());
    }

    #[test]
    fn from_env_parses_and_rejects() {
        // Sequential checks; env vars are process-global, so keep this in
        // one test and restore the variable at the end.
        std::env::remove_var("SCPM_FAULT");
        assert!(FaultInjector::from_env().unwrap().state.is_none());
        std::env::set_var("SCPM_FAULT", "crash@7");
        let inj = FaultInjector::from_env().unwrap();
        assert_eq!(
            inj.state.as_ref().unwrap().plan,
            Some(FaultPlan {
                op_index: 7,
                mode: FaultMode::Crash
            })
        );
        std::env::set_var("SCPM_FAULT", "nonsense");
        assert!(FaultInjector::from_env().is_err());
        std::env::remove_var("SCPM_FAULT");
    }

    #[test]
    fn clones_share_one_op_sequence() {
        let dir = tdir("shared");
        let a = FaultInjector::counting();
        let b = a.clone();
        write_atomic_with(&a, &dir.join("a.bin"), b"a").unwrap();
        write_atomic_with(&b, &dir.join("b.bin"), b"b").unwrap();
        assert_eq!(a.ops_seen(), 8);
        assert_eq!(b.ops_seen(), 8);
    }
}
