//! Incremental edge-list builder producing [`CsrGraph`]s.

use crate::csr::{CsrGraph, VertexId};

/// Collects undirected edges and builds a [`CsrGraph`].
///
/// Self-loops are dropped, parallel edges are deduplicated, and the vertex
/// count can grow automatically when edges mention unseen ids (see
/// [`GraphBuilder::add_edge_growing`]).
#[derive(Clone, Debug, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// A builder for a graph with exactly `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
        }
    }

    /// A builder whose vertex count grows with the edges added.
    pub fn growing() -> Self {
        GraphBuilder::default()
    }

    /// Number of vertices the built graph will have.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Adds the undirected edge `{u, v}`. Self-loops are silently ignored.
    ///
    /// # Panics
    /// Panics if `u` or `v` is out of range for a fixed-size builder.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        assert!(
            (u as usize) < self.n && (v as usize) < self.n,
            "edge ({u}, {v}) out of range for {} vertices",
            self.n
        );
        if u != v {
            self.edges.push((u.min(v), u.max(v)));
        }
    }

    /// Adds `{u, v}`, growing the vertex count to cover both endpoints.
    pub fn add_edge_growing(&mut self, u: VertexId, v: VertexId) {
        self.n = self.n.max(u.max(v) as usize + 1);
        if u != v {
            self.edges.push((u.min(v), u.max(v)));
        }
    }

    /// Ensures the graph has at least `n` vertices.
    pub fn reserve_vertices(&mut self, n: usize) {
        self.n = self.n.max(n);
    }

    /// Builds the deduplicated CSR graph, consuming the builder.
    pub fn build(mut self) -> CsrGraph {
        self.edges.sort_unstable();
        self.edges.dedup();
        let n = self.n;
        let mut deg = vec![0usize; n];
        for &(u, v) in &self.edges {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &deg {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as VertexId; acc];
        for &(u, v) in &self.edges {
            neighbors[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }
        // Each vertex's slice was filled in ascending order of the opposite
        // endpoint only for the `u < v` direction; sort per-vertex to be safe.
        for v in 0..n {
            neighbors[offsets[v]..offsets[v + 1]].sort_unstable();
        }
        CsrGraph::from_parts(offsets, neighbors)
    }
}

/// Convenience: builds a graph with `n` vertices from an edge iterator.
pub fn graph_from_edges<I>(n: usize, edges: I) -> CsrGraph
where
    I: IntoIterator<Item = (VertexId, VertexId)>,
{
    let mut b = GraphBuilder::new(n);
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_parallel_edges_and_drops_self_loops() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 0);
        b.add_edge(0, 1);
        b.add_edge(2, 2);
        let g = b.build();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
        assert!(g.has_edge(0, 1));
    }

    #[test]
    fn growing_builder_expands() {
        let mut b = GraphBuilder::growing();
        b.add_edge_growing(0, 5);
        b.add_edge_growing(2, 3);
        let g = b.build();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn graph_from_edges_matches_builder() {
        let g = graph_from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.neighbors(0), &[1, 3]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn fixed_builder_rejects_out_of_range() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 2);
    }

    #[test]
    fn neighbor_lists_sorted() {
        let g = graph_from_edges(5, [(4, 0), (2, 0), (3, 0), (1, 0)]);
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
    }
}
