//! Induced-subgraph extraction.
//!
//! Given a sorted vertex subset `W ⊆ V`, the induced subgraph `G[W]` keeps
//! exactly the edges with both endpoints in `W`. Mining algorithms operate
//! on the *relabeled* graph (local ids `0..|W|`) and map results back via
//! [`InducedSubgraph::original`].

use crate::bitadj::VertexBitset;
use crate::csr::{CsrGraph, VertexId};

/// A relabeled induced subgraph together with its vertex mapping.
#[derive(Clone, Debug)]
pub struct InducedSubgraph {
    /// The subgraph with local vertex ids `0..k`.
    pub graph: CsrGraph,
    /// `original[local] = global id`; sorted ascending (so local order
    /// preserves global order).
    pub original: Vec<VertexId>,
}

impl InducedSubgraph {
    /// Extracts `G[W]` for a sorted, duplicate-free vertex set `W`.
    ///
    /// Runs in `O(Σ_{v ∈ W} deg(v))` time using merges of sorted neighbor
    /// lists against `W`.
    pub fn extract(g: &CsrGraph, set: &[VertexId]) -> Self {
        debug_assert!(set.windows(2).all(|w| w[0] < w[1]), "set must be sorted");
        let k = set.len();
        let mut offsets = Vec::with_capacity(k + 1);
        offsets.push(0usize);
        let mut neighbors: Vec<VertexId> = Vec::new();
        // For each member, merge its global neighbor list with `set`,
        // emitting *local* ids of common vertices.
        for &v in set {
            let nv = g.neighbors(v);
            let (mut i, mut j) = (0usize, 0usize);
            while i < nv.len() && j < k {
                match nv[i].cmp(&set[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        neighbors.push(j as VertexId);
                        i += 1;
                        j += 1;
                    }
                }
            }
            offsets.push(neighbors.len());
        }
        InducedSubgraph {
            graph: CsrGraph::from_parts(offsets, neighbors),
            original: set.to_vec(),
        }
    }

    /// Carves a *child* induced subgraph out of this one: keeps exactly the
    /// parent-local vertices in `keep` and relabels them `0..keep.count()`.
    ///
    /// This is the incremental-projection fast path of the lattice DFS:
    /// when a child attribute set's vertex set is contained in its parent's
    /// (always true — `V(S ∪ {a}) ⊆ V(S)`, and the Theorem-3 cover
    /// restriction only shrinks it further), the child's subgraph can be
    /// filtered out of the parent's compact CSR in
    /// `O(Σ_{v ∈ keep} deg_parent(v))` instead of re-merged against the
    /// global graph. The result is **identical** to
    /// [`InducedSubgraph::extract`] on the corresponding global vertex set
    /// (local order preserves global order in both constructions).
    pub fn project(&self, keep: &VertexBitset) -> InducedSubgraph {
        debug_assert_eq!(keep.universe(), self.num_vertices());
        let n = self.num_vertices();
        let mut rank: Vec<VertexId> = vec![VertexId::MAX; n];
        let mut original = Vec::with_capacity(keep.count());
        for v in keep.iter() {
            rank[v as usize] = original.len() as VertexId;
            original.push(self.original[v as usize]);
        }
        let mut offsets = Vec::with_capacity(original.len() + 1);
        offsets.push(0usize);
        let mut neighbors: Vec<VertexId> = Vec::new();
        for v in keep.iter() {
            for &w in self.graph.neighbors(v) {
                if keep.contains(w) {
                    neighbors.push(rank[w as usize]);
                }
            }
            offsets.push(neighbors.len());
        }
        InducedSubgraph {
            graph: CsrGraph::from_parts(offsets, neighbors),
            original,
        }
    }

    /// Number of vertices in the subgraph.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Maps a local vertex id back to the global id.
    #[inline]
    pub fn to_original(&self, local: VertexId) -> VertexId {
        self.original[local as usize]
    }

    /// Maps a set of local ids back to (sorted) global ids.
    pub fn to_original_set(&self, locals: &[VertexId]) -> Vec<VertexId> {
        let mut out: Vec<VertexId> = locals.iter().map(|&l| self.to_original(l)).collect();
        out.sort_unstable();
        out
    }

    /// Maps a global id to its local id, if present.
    pub fn to_local(&self, global: VertexId) -> Option<VertexId> {
        self.original
            .binary_search(&global)
            .ok()
            .map(|i| i as VertexId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    fn diamond() -> CsrGraph {
        // 0-1, 0-2, 1-2, 1-3, 2-3
        graph_from_edges(4, [(0, 1), (0, 2), (1, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn extract_preserves_internal_edges_only() {
        let g = diamond();
        let sub = InducedSubgraph::extract(&g, &[1, 2, 3]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.graph.num_edges(), 3); // triangle 1-2-3
        assert!(sub.graph.has_edge(0, 1)); // local 0=1, 1=2
        assert_eq!(sub.to_original(0), 1);
        assert_eq!(sub.to_original_set(&[0, 2]), vec![1, 3]);
    }

    #[test]
    fn extract_empty_and_single() {
        let g = diamond();
        let sub = InducedSubgraph::extract(&g, &[]);
        assert_eq!(sub.num_vertices(), 0);
        let sub1 = InducedSubgraph::extract(&g, &[2]);
        assert_eq!(sub1.num_vertices(), 1);
        assert_eq!(sub1.graph.num_edges(), 0);
    }

    #[test]
    fn extract_disconnected_subset() {
        let g = diamond();
        let sub = InducedSubgraph::extract(&g, &[0, 3]);
        assert_eq!(sub.graph.num_edges(), 0);
    }

    #[test]
    fn to_local_roundtrip() {
        let g = diamond();
        let sub = InducedSubgraph::extract(&g, &[0, 2, 3]);
        for local in 0..sub.num_vertices() as VertexId {
            let global = sub.to_original(local);
            assert_eq!(sub.to_local(global), Some(local));
        }
        assert_eq!(sub.to_local(1), None);
    }

    #[test]
    fn project_equals_extract() {
        let g = diamond();
        let parent = InducedSubgraph::extract(&g, &[0, 1, 2, 3]);
        // Keep parent-locals {1, 2, 3} = globals {1, 2, 3}.
        let keep = VertexBitset::from_sorted(4, &[1, 2, 3]);
        let child = parent.project(&keep);
        let direct = InducedSubgraph::extract(&g, &[1, 2, 3]);
        assert_eq!(child.graph, direct.graph);
        assert_eq!(child.original, direct.original);
    }

    #[test]
    fn project_chains_through_relabeled_parents() {
        let g = diamond();
        // Parent locals 0,1,2; keep parent-locals {0, 2} = globals {1, 3}.
        let parent = InducedSubgraph::extract(&g, &[1, 2, 3]);
        let keep = VertexBitset::from_sorted(3, &[0, 2]);
        let child = parent.project(&keep);
        let direct = InducedSubgraph::extract(&g, &[1, 3]);
        assert_eq!(child.graph, direct.graph);
        assert_eq!(child.original, direct.original);
        assert_eq!(child.graph.num_edges(), 1); // edge 1-3
    }

    #[test]
    fn project_empty_keep() {
        let g = diamond();
        let parent = InducedSubgraph::extract(&g, &[0, 1, 2]);
        let child = parent.project(&VertexBitset::empty(3));
        assert_eq!(child.num_vertices(), 0);
    }

    #[test]
    fn whole_graph_extraction_is_identity() {
        let g = diamond();
        let sub = InducedSubgraph::extract(&g, &[0, 1, 2, 3]);
        assert_eq!(sub.graph, g);
    }
}
