//! Planted-community graphs: a sparse background graph plus embedded dense
//! vertex groups. These are the synthetic stand-ins for the paper's
//! real-world networks — each planted group is (with high probability) a
//! γ-quasi-clique, and the attribute model
//! ([`attributes`](crate::generators::attributes)) correlates attribute sets
//! with group membership.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};

/// Background topology model for the non-community edges.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum BackgroundModel {
    /// Uniform random edges: expected `mean_degree * n / 2` edges.
    Uniform {
        /// Target mean degree of the background.
        mean_degree: f64,
    },
    /// Preferential attachment with `m` edges per vertex (heavy-tailed
    /// degrees, like the collaboration/citation networks in the paper).
    PreferentialAttachment {
        /// Edges attached per arriving vertex.
        m: usize,
    },
}

/// Configuration for [`PlantedGraph::generate`].
#[derive(Clone, Debug)]
pub struct PlantedCommunityConfig {
    /// Total number of vertices.
    pub n: usize,
    /// Background edge model.
    pub background: BackgroundModel,
    /// Number of planted communities.
    pub num_communities: usize,
    /// Inclusive community size range; sizes are sampled uniformly.
    pub community_size: (usize, usize),
    /// Probability of each intra-community edge (the planted density). A
    /// value of `p_in ≥ γ + margin` makes groups γ-quasi-cliques w.h.p.
    pub p_in: f64,
}

impl PlantedCommunityConfig {
    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.community_size.0 < 2 || self.community_size.0 > self.community_size.1 {
            return Err(format!(
                "invalid community size range {:?}",
                self.community_size
            ));
        }
        if !(0.0..=1.0).contains(&self.p_in) {
            return Err(format!("p_in {} out of [0,1]", self.p_in));
        }
        let worst = self.num_communities * self.community_size.1;
        if worst > self.n {
            return Err(format!(
                "{} communities of up to {} vertices exceed n = {}",
                self.num_communities, self.community_size.1, self.n
            ));
        }
        Ok(())
    }
}

/// A generated planted-community graph.
#[derive(Clone, Debug)]
pub struct PlantedGraph {
    /// The merged topology (background plus planted edges).
    pub graph: CsrGraph,
    /// The planted groups, each a sorted vertex list. Disjoint.
    pub communities: Vec<Vec<VertexId>>,
}

impl PlantedGraph {
    /// Generates a planted-community graph.
    ///
    /// Community members are drawn disjointly from a random permutation of
    /// the vertices; intra-community pairs become edges with probability
    /// `p_in`; the background model adds global edges on top.
    ///
    /// # Panics
    /// Panics if the configuration is invalid (see
    /// [`PlantedCommunityConfig::validate`]).
    pub fn generate(config: &PlantedCommunityConfig, seed: u64) -> Self {
        config.validate().expect("invalid planted-community config");
        let mut rng = StdRng::seed_from_u64(seed);
        let n = config.n;
        let mut b = GraphBuilder::new(n);

        // Disjoint membership from a shuffled vertex pool.
        let mut pool: Vec<VertexId> = (0..n as VertexId).collect();
        pool.shuffle(&mut rng);
        let mut cursor = 0usize;
        let mut communities = Vec::with_capacity(config.num_communities);
        for _ in 0..config.num_communities {
            let size = rng.random_range(config.community_size.0..=config.community_size.1);
            let mut members: Vec<VertexId> = pool[cursor..cursor + size].to_vec();
            cursor += size;
            members.sort_unstable();
            for i in 0..members.len() {
                for j in (i + 1)..members.len() {
                    if rng.random::<f64>() < config.p_in {
                        b.add_edge(members[i], members[j]);
                    }
                }
            }
            communities.push(members);
        }

        match config.background {
            BackgroundModel::Uniform { mean_degree } => {
                let m = ((mean_degree * n as f64) / 2.0).round() as usize;
                for _ in 0..m {
                    let u = rng.random_range(0..n as u64) as VertexId;
                    let v = rng.random_range(0..n as u64) as VertexId;
                    if u != v {
                        b.add_edge(u, v);
                    }
                }
            }
            BackgroundModel::PreferentialAttachment { m } => {
                // Inline BA process over all n vertices; merged with the
                // planted edges by the builder's dedup.
                let m0 = m + 1;
                let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m);
                for u in 0..m0.min(n) as VertexId {
                    for v in (u + 1)..m0.min(n) as VertexId {
                        b.add_edge(u, v);
                        endpoints.push(u);
                        endpoints.push(v);
                    }
                }
                let mut chosen: Vec<VertexId> = Vec::with_capacity(m);
                for v in m0 as VertexId..n as VertexId {
                    chosen.clear();
                    while chosen.len() < m {
                        let t = endpoints[rng.random_range(0..endpoints.len())];
                        if !chosen.contains(&t) {
                            chosen.push(t);
                        }
                    }
                    for &t in &chosen {
                        b.add_edge(v, t);
                        endpoints.push(v);
                        endpoints.push(t);
                    }
                }
            }
        }

        PlantedGraph {
            graph: b.build(),
            communities,
        }
    }

    /// The community index of each vertex (`None` for background vertices).
    pub fn membership(&self) -> Vec<Option<usize>> {
        let n = self.graph.num_vertices();
        let mut m = vec![None; n];
        for (c, members) in self.communities.iter().enumerate() {
            for &v in members {
                m[v as usize] = Some(c);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> PlantedCommunityConfig {
        PlantedCommunityConfig {
            n: 500,
            background: BackgroundModel::Uniform { mean_degree: 2.0 },
            num_communities: 5,
            community_size: (8, 12),
            p_in: 0.9,
        }
    }

    #[test]
    fn communities_are_disjoint_and_sized() {
        let pg = PlantedGraph::generate(&config(), 21);
        assert_eq!(pg.communities.len(), 5);
        let mut seen = std::collections::HashSet::new();
        for c in &pg.communities {
            assert!((8..=12).contains(&c.len()));
            for &v in c {
                assert!(seen.insert(v), "vertex {v} in two communities");
            }
        }
    }

    #[test]
    fn communities_are_dense() {
        let pg = PlantedGraph::generate(&config(), 3);
        for c in &pg.communities {
            let possible = c.len() * (c.len() - 1) / 2;
            let actual = pg.graph.edges_within(c);
            assert!(
                actual as f64 >= 0.6 * possible as f64,
                "community too sparse: {actual}/{possible}"
            );
        }
    }

    #[test]
    fn membership_covers_members_only() {
        let pg = PlantedGraph::generate(&config(), 4);
        let member = pg.membership();
        let planted: usize = pg.communities.iter().map(Vec::len).sum();
        let assigned = member.iter().filter(|m| m.is_some()).count();
        assert_eq!(planted, assigned);
    }

    #[test]
    fn preferential_attachment_background() {
        let cfg = PlantedCommunityConfig {
            background: BackgroundModel::PreferentialAttachment { m: 2 },
            ..config()
        };
        let pg = PlantedGraph::generate(&cfg, 10);
        assert_eq!(pg.graph.num_vertices(), 500);
        // PA background guarantees min degree >= 2 for non-seed vertices.
        assert!(pg.graph.num_edges() >= 500);
    }

    #[test]
    #[should_panic(expected = "invalid planted-community config")]
    fn rejects_oversubscribed_communities() {
        let cfg = PlantedCommunityConfig {
            n: 10,
            num_communities: 5,
            community_size: (4, 4),
            ..config()
        };
        PlantedGraph::generate(&cfg, 0);
    }

    #[test]
    fn deterministic() {
        let a = PlantedGraph::generate(&config(), 77);
        let b = PlantedGraph::generate(&config(), 77);
        assert_eq!(a.graph, b.graph);
        assert_eq!(a.communities, b.communities);
    }
}
