//! Erdős–Rényi random graphs: `G(n, p)` and `G(n, m)`.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};

/// Samples `G(n, p)`: every pair is an edge independently with probability
/// `p`. Uses geometric skipping, so the cost is `O(n + m)` rather than
/// `O(n^2)` for sparse graphs.
pub fn gnp(n: usize, p: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    if n < 2 {
        return b.build();
    }
    if p >= 1.0 {
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                b.add_edge(u, v);
            }
        }
        return b.build();
    }
    if p <= 0.0 {
        return b.build();
    }
    // Iterate pair index k over the upper triangle with geometric jumps.
    let log_q = (1.0 - p).ln();
    let total_pairs = n as u64 * (n as u64 - 1) / 2;
    let mut k: u64 = 0;
    loop {
        let u: f64 = rng.random();
        // Number of pairs skipped before the next edge.
        let skip = ((1.0 - u).ln() / log_q).floor() as u64;
        k = k.saturating_add(skip);
        if k >= total_pairs {
            break;
        }
        let (a, bb) = pair_from_index(k, n as u64);
        b.add_edge(a as VertexId, bb as VertexId);
        k += 1;
        if k >= total_pairs {
            break;
        }
    }
    b.build()
}

/// Maps a linear index `k ∈ [0, n(n-1)/2)` to the `k`-th pair `(i, j)` with
/// `i < j` in row-major upper-triangle order.
fn pair_from_index(k: u64, n: u64) -> (u64, u64) {
    // Row i contributes (n - 1 - i) pairs. Find i such that the cumulative
    // count exceeds k, then the column.
    let mut i = 0u64;
    let mut remaining = k;
    loop {
        let row = n - 1 - i;
        if remaining < row {
            return (i, i + 1 + remaining);
        }
        remaining -= row;
        i += 1;
    }
}

/// Samples `G(n, m)`: exactly `m` distinct edges drawn uniformly.
///
/// # Panics
/// Panics if `m` exceeds the number of vertex pairs.
pub fn gnm(n: usize, m: usize, seed: u64) -> CsrGraph {
    let total_pairs = n.saturating_mul(n.saturating_sub(1)) / 2;
    assert!(m <= total_pairs, "m = {m} exceeds {total_pairs} pairs");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    if m == 0 {
        return b.build();
    }
    // Rejection sampling of distinct pairs; fine while m << n^2. Densities
    // above half the pairs use a complement trick to stay fast.
    if m * 2 <= total_pairs {
        let mut seen = std::collections::HashSet::with_capacity(m * 2);
        while seen.len() < m {
            let u = rng.random_range(0..n as u64) as VertexId;
            let v = rng.random_range(0..n as u64) as VertexId;
            if u == v {
                continue;
            }
            let key = (u.min(v), u.max(v));
            if seen.insert(key) {
                b.add_edge(key.0, key.1);
            }
        }
    } else {
        // Dense: choose the complement (pairs to *exclude*).
        let exclude = total_pairs - m;
        let mut excluded = std::collections::HashSet::with_capacity(exclude * 2);
        while excluded.len() < exclude {
            let u = rng.random_range(0..n as u64) as VertexId;
            let v = rng.random_range(0..n as u64) as VertexId;
            if u == v {
                continue;
            }
            excluded.insert((u.min(v), u.max(v)));
        }
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                if !excluded.contains(&(u, v)) {
                    b.add_edge(u, v);
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_exact_edge_count() {
        let g = gnm(50, 200, 7);
        assert_eq!(g.num_vertices(), 50);
        assert_eq!(g.num_edges(), 200);
    }

    #[test]
    fn gnm_dense_complement_path() {
        let n = 12;
        let total = n * (n - 1) / 2;
        let g = gnm(n, total - 3, 11);
        assert_eq!(g.num_edges(), total - 3);
        let full = gnm(n, total, 11);
        assert_eq!(full.num_edges(), total);
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(10, 0.0, 3).num_edges(), 0);
        assert_eq!(gnp(10, 1.0, 3).num_edges(), 45);
        assert_eq!(gnp(1, 0.5, 3).num_edges(), 0);
        assert_eq!(gnp(0, 0.5, 3).num_vertices(), 0);
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let n = 400;
        let p = 0.05;
        let g = gnp(n, p, 42);
        let expected = (n * (n - 1) / 2) as f64 * p;
        let got = g.num_edges() as f64;
        // 5 standard deviations of slack.
        let sd = (expected * (1.0 - p)).sqrt();
        assert!(
            (got - expected).abs() < 5.0 * sd,
            "edge count {got} too far from expectation {expected}"
        );
    }

    #[test]
    fn deterministic_for_seed() {
        let a = gnp(100, 0.1, 5);
        let b = gnp(100, 0.1, 5);
        assert_eq!(a, b);
        let c = gnp(100, 0.1, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn pair_from_index_enumerates_upper_triangle() {
        let n = 5u64;
        let mut pairs = Vec::new();
        for k in 0..(n * (n - 1) / 2) {
            pairs.push(pair_from_index(k, n));
        }
        let mut expect = Vec::new();
        for i in 0..n {
            for j in (i + 1)..n {
                expect.push((i, j));
            }
        }
        assert_eq!(pairs, expect);
    }
}
