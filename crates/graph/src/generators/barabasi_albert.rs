//! Barabási–Albert preferential attachment, producing the heavy-tailed
//! degree distributions characteristic of the paper's real datasets.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};

/// Samples a Barabási–Albert graph: starts from a clique on `m0 = m + 1`
/// vertices, then each new vertex attaches to `m` distinct existing
/// vertices chosen proportionally to degree.
///
/// # Panics
/// Panics if `n < m + 1` or `m == 0`.
pub fn barabasi_albert(n: usize, m: usize, seed: u64) -> CsrGraph {
    assert!(m >= 1, "m must be at least 1");
    assert!(n > m, "need at least m + 1 = {} vertices", m + 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // `targets` holds one entry per edge endpoint, so sampling uniformly
    // from it is degree-proportional sampling.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m);
    let m0 = m + 1;
    for u in 0..m0 as VertexId {
        for v in (u + 1)..m0 as VertexId {
            b.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    let mut chosen: Vec<VertexId> = Vec::with_capacity(m);
    for v in m0 as VertexId..n as VertexId {
        chosen.clear();
        // Rejection sampling until m distinct targets are found; m is small
        // so the loop terminates quickly.
        while chosen.len() < m {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            b.add_edge(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::degree::DegreeDistribution;

    #[test]
    fn vertex_and_edge_counts() {
        let n = 200;
        let m = 3;
        let g = barabasi_albert(n, m, 9);
        assert_eq!(g.num_vertices(), n);
        let clique_edges = (m + 1) * m / 2;
        assert_eq!(g.num_edges(), clique_edges + (n - m - 1) * m);
    }

    #[test]
    fn min_degree_is_m() {
        let g = barabasi_albert(150, 2, 1);
        for v in g.vertices() {
            assert!(g.degree(v) >= 2);
        }
    }

    #[test]
    fn produces_heavy_tail() {
        // Degree distribution should be highly skewed: max degree far above
        // the mean.
        let g = barabasi_albert(2000, 2, 13);
        let d = DegreeDistribution::from_graph(&g);
        assert!(
            d.max_degree() as f64 > 5.0 * d.mean(),
            "max {} vs mean {}",
            d.max_degree(),
            d.mean()
        );
    }

    #[test]
    fn deterministic() {
        assert_eq!(barabasi_albert(100, 2, 5), barabasi_albert(100, 2, 5));
    }

    #[test]
    #[should_panic(expected = "at least m + 1")]
    fn rejects_too_few_vertices() {
        barabasi_albert(2, 3, 0);
    }
}
