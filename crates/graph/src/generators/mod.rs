//! Random graph and attribute generators.
//!
//! All generators take explicit seeds and are deterministic for a given
//! seed, which the experiment harness relies on.

pub mod attributes;
pub mod barabasi_albert;
pub mod coauthorship;
pub mod erdos_renyi;
pub mod planted;
pub mod watts_strogatz;

pub use attributes::{AttributeModel, ZipfSampler};
pub use barabasi_albert::barabasi_albert;
pub use coauthorship::CliqueOverlay;
pub use erdos_renyi::{gnm, gnp};
pub use planted::{PlantedCommunityConfig, PlantedGraph};
pub use watts_strogatz::watts_strogatz;
