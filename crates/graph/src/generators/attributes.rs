//! Attribute-assignment models.
//!
//! Two ingredients reproduce the attribute statistics of the paper's
//! datasets:
//!
//! 1. **Zipf-distributed background attributes** — attribute popularity in
//!    text-derived vocabularies (paper titles, abstracts, artists) is
//!    heavy-tailed, which is what makes *top-support* attribute sets differ
//!    from *top-correlation* ones (Tables 2–4).
//! 2. **Community topics** — each planted community is assigned a small
//!    "topic" attribute set that its members carry with high probability,
//!    inducing the attribute→dense-subgraph correlation the paper mines.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::attributed::{AttributedGraph, AttributedGraphBuilder};
use crate::generators::planted::PlantedGraph;

/// Samples `0..n` with probability proportional to `1 / rank^exponent`.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over `n` ranks with the given exponent (`s > 0`).
    ///
    /// # Panics
    /// Panics if `n == 0` or the exponent is not finite and positive.
    pub fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0, "ZipfSampler needs at least one rank");
        assert!(
            exponent.is_finite() && exponent > 0.0,
            "exponent must be positive"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += (rank as f64).powf(-exponent);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        // Guard against floating point drift on the last entry.
        *cdf.last_mut().unwrap() = 1.0;
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the sampler has zero ranks (never true; see `new`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..n` (0 = most popular).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.random();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Probability of rank `i`.
    pub fn probability(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

/// Configuration of the attribute model.
#[derive(Clone, Debug)]
pub struct AttributeModel {
    /// Size of the background vocabulary.
    pub vocab_size: usize,
    /// Zipf exponent of background attribute popularity.
    pub zipf_exponent: f64,
    /// Mean number of background attributes per vertex (Poisson).
    pub mean_attrs_per_vertex: f64,
    /// Number of topic attributes assigned to each community.
    pub topic_attrs_per_community: usize,
    /// Probability that a community member carries each topic attribute.
    pub p_topic: f64,
    /// Probability that a *non-member* carries a given topic attribute
    /// (background noise; keeps topic supports realistic).
    pub p_topic_noise: f64,
}

impl Default for AttributeModel {
    fn default() -> Self {
        AttributeModel {
            vocab_size: 1000,
            zipf_exponent: 1.05,
            mean_attrs_per_vertex: 6.0,
            topic_attrs_per_community: 2,
            p_topic: 0.85,
            p_topic_noise: 0.002,
        }
    }
}

impl AttributeModel {
    /// Applies the model to a planted graph, producing an attributed graph.
    ///
    /// Background attributes are named `w<rank>` (with `vocab` overriding
    /// names when provided); topic attributes are named `topic<c>_<i>` or
    /// taken from `topic_vocab`.
    pub fn assign(
        &self,
        planted: &PlantedGraph,
        vocab: Option<&[String]>,
        topic_vocab: Option<&[String]>,
        seed: u64,
    ) -> AttributedGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = planted.graph.num_vertices();
        let mut b = AttributedGraphBuilder::new(n);
        // Recreate the topology inside the attributed builder.
        for (u, v) in planted.graph.edges() {
            b.add_edge(u, v);
        }

        // Background vocabulary.
        let bg_ids: Vec<_> = (0..self.vocab_size)
            .map(|rank| {
                let name = match vocab {
                    Some(words) if rank < words.len() => words[rank].clone(),
                    _ => format!("w{rank}"),
                };
                b.intern_attr(&name)
            })
            .collect();
        let zipf = ZipfSampler::new(self.vocab_size, self.zipf_exponent);
        for v in 0..n as u32 {
            let count = poisson(self.mean_attrs_per_vertex, &mut rng);
            for _ in 0..count {
                let rank = zipf.sample(&mut rng);
                b.add_attr(v, bg_ids[rank]);
            }
        }

        // Topic attributes per community.
        for (c, members) in planted.communities.iter().enumerate() {
            let mut topic_ids = Vec::with_capacity(self.topic_attrs_per_community);
            for i in 0..self.topic_attrs_per_community {
                let idx = c * self.topic_attrs_per_community + i;
                let name = match topic_vocab {
                    Some(words) if idx < words.len() => words[idx].clone(),
                    _ => format!("topic{c}_{i}"),
                };
                topic_ids.push(b.intern_attr(&name));
            }
            for &a in &topic_ids {
                for &v in members {
                    if rng.random::<f64>() < self.p_topic {
                        b.add_attr(v, a);
                    }
                }
                if self.p_topic_noise > 0.0 {
                    for v in 0..n as u32 {
                        if rng.random::<f64>() < self.p_topic_noise {
                            b.add_attr(v, a);
                        }
                    }
                }
            }
        }

        b.build()
    }
}

/// Knuth's Poisson sampler; adequate for small means.
fn poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    let limit = (-lambda).exp();
    let mut product: f64 = rng.random();
    let mut count = 0usize;
    while product > limit {
        product *= rng.random::<f64>();
        count += 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::planted::{BackgroundModel, PlantedCommunityConfig};

    #[test]
    fn zipf_probabilities_sum_to_one() {
        let z = ZipfSampler::new(50, 1.1);
        let total: f64 = (0..50).map(|i| z.probability(i)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn zipf_rank0_most_popular() {
        let z = ZipfSampler::new(100, 1.0);
        assert!(z.probability(0) > z.probability(1));
        assert!(z.probability(1) > z.probability(50));
    }

    #[test]
    fn zipf_empirical_skew() {
        let z = ZipfSampler::new(20, 1.2);
        let mut rng = StdRng::seed_from_u64(5);
        let mut counts = [0usize; 20];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[5]);
        assert!(counts[0] > 2 * counts[10]);
    }

    #[test]
    fn poisson_mean_close_to_lambda() {
        let mut rng = StdRng::seed_from_u64(0);
        let lambda = 4.0;
        let trials = 20_000;
        let total: usize = (0..trials).map(|_| poisson(lambda, &mut rng)).sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - lambda).abs() < 0.1, "empirical mean {mean}");
        assert_eq!(poisson(0.0, &mut rng), 0);
    }

    fn small_planted() -> PlantedGraph {
        PlantedGraph::generate(
            &PlantedCommunityConfig {
                n: 200,
                background: BackgroundModel::Uniform { mean_degree: 2.0 },
                num_communities: 3,
                community_size: (6, 8),
                p_in: 0.9,
            },
            17,
        )
    }

    #[test]
    fn assign_produces_topics_correlated_with_communities() {
        let pg = small_planted();
        let model = AttributeModel {
            vocab_size: 50,
            p_topic: 1.0,
            p_topic_noise: 0.0,
            ..AttributeModel::default()
        };
        let ag = model.assign(&pg, None, None, 3);
        assert_eq!(ag.num_vertices(), 200);
        // Every community-0 member carries topic0_0.
        let topic = ag.attr_id("topic0_0").unwrap();
        let with_topic = ag.vertices_with(topic);
        assert_eq!(with_topic, pg.communities[0].as_slice());
    }

    #[test]
    fn assign_uses_custom_vocab() {
        let pg = small_planted();
        let model = AttributeModel {
            vocab_size: 3,
            ..AttributeModel::default()
        };
        let vocab = vec!["alpha".to_string(), "beta".to_string(), "gamma".to_string()];
        let ag = model.assign(&pg, Some(&vocab), None, 4);
        assert!(ag.attr_id("alpha").is_some());
        assert!(ag.attr_id("beta").is_some());
    }

    #[test]
    fn background_popularity_is_skewed() {
        let pg = small_planted();
        let model = AttributeModel {
            vocab_size: 100,
            zipf_exponent: 1.2,
            mean_attrs_per_vertex: 8.0,
            topic_attrs_per_community: 0,
            ..AttributeModel::default()
        };
        let ag = model.assign(&pg, None, None, 9);
        let s0 = ag.support(ag.attr_id("w0").unwrap());
        let s50 = ag.attr_id("w50").map(|a| ag.support(a)).unwrap_or(0);
        assert!(s0 > s50, "rank 0 support {s0} vs rank 50 support {s50}");
    }
}
