//! Watts–Strogatz small-world graphs.
//!
//! A ring lattice where each vertex connects to its `k` nearest neighbors
//! (`k/2` on each side), with every lattice edge rewired to a uniform
//! random endpoint with probability `beta`. Used by the null-model
//! sensitivity tests: the analytical `max-exp` bound only sees the degree
//! distribution, so graphs with identical degrees but very different
//! clustering (lattice `beta = 0` vs rewired `beta = 1`) expose how much
//! of the real coverage signal the bound ignores.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};

/// Samples a Watts–Strogatz graph.
///
/// # Panics
/// Panics if `k` is odd, `k ≥ n`, or `beta ∉ [0, 1]`.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> CsrGraph {
    assert!(
        k.is_multiple_of(2),
        "k must be even (k/2 neighbors per side)"
    );
    assert!(k < n, "k must be smaller than n");
    assert!((0.0..=1.0).contains(&beta), "beta must be in [0, 1]");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    if n < 2 || k == 0 {
        return b.build();
    }
    // Collect ring edges, then rewire.
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n * k / 2);
    for u in 0..n {
        for step in 1..=(k / 2) {
            let v = (u + step) % n;
            edges.push((u as VertexId, v as VertexId));
        }
    }
    // Track adjacency to avoid duplicate edges while rewiring.
    let mut adj: Vec<std::collections::HashSet<VertexId>> =
        vec![std::collections::HashSet::new(); n];
    for &(u, v) in &edges {
        adj[u as usize].insert(v);
        adj[v as usize].insert(u);
    }
    for edge in edges.iter_mut() {
        if beta > 0.0 && rng.random::<f64>() < beta {
            let (u, v) = *edge;
            // Redraw the far endpoint; keep the edge if the vertex is
            // saturated (can happen only for tiny n).
            let mut tries = 0;
            loop {
                let w: VertexId = rng.random_range(0..n as u32);
                if w != u && !adj[u as usize].contains(&w) {
                    adj[u as usize].remove(&v);
                    adj[v as usize].remove(&u);
                    adj[u as usize].insert(w);
                    adj[w as usize].insert(u);
                    *edge = (u, w);
                    break;
                }
                tries += 1;
                if tries > 32 && adj[u as usize].len() >= n - 1 {
                    break; // saturated vertex: keep the lattice edge
                }
            }
        }
    }
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::clustering;

    #[test]
    fn lattice_has_exact_degrees() {
        let g = watts_strogatz(20, 4, 0.0, 1);
        assert_eq!(g.num_edges(), 20 * 2);
        for v in g.vertices() {
            assert_eq!(g.degree(v), 4, "vertex {v}");
        }
        // Ring lattice with k = 4: triangles between consecutive
        // neighbors give clustering 0.5.
        let c = clustering(&g);
        assert!((c.average_local - 0.5).abs() < 1e-9);
    }

    #[test]
    fn rewiring_preserves_edge_count() {
        for beta in [0.1, 0.5, 1.0] {
            let g = watts_strogatz(50, 6, beta, 7);
            assert_eq!(g.num_edges(), 50 * 3, "beta {beta}");
        }
    }

    #[test]
    fn rewiring_lowers_clustering() {
        let lattice = clustering(&watts_strogatz(200, 8, 0.0, 3)).average_local;
        let random = clustering(&watts_strogatz(200, 8, 1.0, 3)).average_local;
        assert!(
            random < lattice * 0.5,
            "rewired clustering {random} should be well below lattice {lattice}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = watts_strogatz(40, 4, 0.3, 11);
        let b = watts_strogatz(40, 4, 0.3, 11);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "k must be even")]
    fn rejects_odd_k() {
        watts_strogatz(10, 3, 0.1, 0);
    }

    #[test]
    #[should_panic(expected = "k must be smaller")]
    fn rejects_k_too_large() {
        watts_strogatz(4, 4, 0.1, 0);
    }
}
