//! Co-authorship clique overlay.
//!
//! A collaboration network is, mechanically, the union of one clique per
//! paper over its author set. Preferential-attachment backgrounds
//! reproduce the degree tail of such networks but not their *clique
//! spectrum* — real DBLP contains papers with dozens of authors, i.e.
//! large cliques, which is why random vertex samples of the real graph
//! still contain quasi-cliques (the non-zero `sim-exp` of the paper's
//! Figure 4). This overlay adds `papers ≈ n · papers_per_vertex` cliques
//! whose sizes follow a truncated power law, restoring that spectrum.

use rand::prelude::*;
use rand::rngs::StdRng;

use crate::builder::GraphBuilder;
use crate::csr::{CsrGraph, VertexId};

/// Parameters of the per-paper clique overlay.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CliqueOverlay {
    /// Expected papers per vertex (`papers = round(n · this)`).
    pub papers_per_vertex: f64,
    /// Power-law exponent of the author-count distribution
    /// (`P[s] ∝ s^-exponent` over `min_size..=max_size`).
    pub exponent: f64,
    /// Smallest author count (≥ 2; single-author papers add no edges).
    pub min_size: usize,
    /// Largest author count (truncation point of the tail).
    pub max_size: usize,
}

impl CliqueOverlay {
    /// A DBLP-flavored default: mostly 2–4 author papers with a tail of
    /// large collaborations.
    ///
    /// At bench scale (a few thousand vertices) this deliberately
    /// overweights collaboration edges relative to real DBLP's mean degree
    /// (~5): a subsampled graph needs a denser clique spectrum for random
    /// vertex samples to hit any of it, which is the phenomenon the
    /// null-model experiments measure. Density-faithful runs at full scale
    /// should reduce `papers_per_vertex` accordingly.
    pub fn dblp_flavor() -> Self {
        CliqueOverlay {
            papers_per_vertex: 0.35,
            exponent: 2.6,
            min_size: 2,
            max_size: 120,
        }
    }

    /// Samples an author count from the truncated power law via inverse
    /// transform over the discrete tail weights.
    fn sample_size(&self, weights: &[f64], rng: &mut StdRng) -> usize {
        let total: f64 = weights.iter().sum();
        let mut x = rng.random::<f64>() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return self.min_size + i;
            }
            x -= w;
        }
        self.max_size
    }

    /// Applies the overlay to `base`, returning a graph with the same
    /// vertex set and the union of the edges.
    ///
    /// # Panics
    /// Panics if `min_size < 2`, `max_size < min_size`, or the graph has
    /// fewer than `min_size` vertices.
    pub fn apply(&self, base: &CsrGraph, seed: u64) -> CsrGraph {
        assert!(self.min_size >= 2, "papers need at least two authors");
        assert!(self.max_size >= self.min_size, "empty size range");
        let n = base.num_vertices();
        assert!(n >= self.min_size, "graph smaller than min paper size");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for (u, v) in base.edges() {
            b.add_edge(u, v);
        }
        let weights: Vec<f64> = (self.min_size..=self.max_size.min(n))
            .map(|s| (s as f64).powf(-self.exponent))
            .collect();
        let papers = (n as f64 * self.papers_per_vertex).round() as usize;
        let mut authors: Vec<VertexId> = Vec::new();
        for _ in 0..papers {
            let s = self.sample_size(&weights, &mut rng).min(n);
            // Distinct authors via partial Fisher-Yates over a fresh range
            // would be O(n) per paper; rejection sampling is fine because
            // s ≪ n in every realistic configuration.
            authors.clear();
            while authors.len() < s {
                let v = rng.random_range(0..n as u32);
                if !authors.contains(&v) {
                    authors.push(v);
                }
            }
            for i in 0..authors.len() {
                for j in (i + 1)..authors.len() {
                    b.add_edge(authors[i], authors[j]);
                }
            }
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::clustering;
    use crate::generators::barabasi_albert::barabasi_albert;

    #[test]
    fn overlay_only_adds_edges() {
        let base = barabasi_albert(500, 2, 3);
        let overlaid = CliqueOverlay::dblp_flavor().apply(&base, 7);
        assert_eq!(overlaid.num_vertices(), base.num_vertices());
        assert!(overlaid.num_edges() >= base.num_edges());
        for (u, v) in base.edges() {
            assert!(overlaid.has_edge(u, v), "lost edge ({u}, {v})");
        }
    }

    #[test]
    fn overlay_raises_clustering() {
        let base = barabasi_albert(800, 2, 5);
        let overlaid = CliqueOverlay {
            papers_per_vertex: 0.5,
            exponent: 2.2,
            min_size: 3,
            max_size: 40,
        }
        .apply(&base, 9);
        let c_base = clustering(&base).average_local;
        let c_over = clustering(&overlaid).average_local;
        assert!(
            c_over > c_base,
            "cliques must raise clustering: {c_over} vs {c_base}"
        );
    }

    #[test]
    fn size_distribution_is_heavy_tailed() {
        // With a long max_size tail some large papers should appear over
        // many draws.
        let overlay = CliqueOverlay {
            papers_per_vertex: 2.0,
            exponent: 2.0,
            min_size: 2,
            max_size: 60,
        };
        let base = CsrGraph::empty(2000);
        let overlaid = overlay.apply(&base, 3);
        // A size-s clique gives its members degree ≥ s−1: look for a
        // vertex with degree ≥ 15 as evidence of a large paper.
        assert!(
            overlaid.max_degree() >= 15,
            "max degree {} suggests no large cliques",
            overlaid.max_degree()
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let base = barabasi_albert(300, 2, 1);
        let a = CliqueOverlay::dblp_flavor().apply(&base, 11);
        let b = CliqueOverlay::dblp_flavor().apply(&base, 11);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "at least two authors")]
    fn rejects_single_author_min() {
        let base = CsrGraph::empty(10);
        CliqueOverlay {
            papers_per_vertex: 0.1,
            exponent: 2.0,
            min_size: 1,
            max_size: 5,
        }
        .apply(&base, 0);
    }
}
