//! Append-only write-ahead journal of [`GraphDelta`] records.
//!
//! The serving tier journals every accepted graph delta *before*
//! applying it (write-ahead logging), so a crash between the append and
//! the next checkpoint loses nothing: recovery replays the journal on
//! top of the last good snapshot through the incremental mining path.
//! One journal file belongs to one snapshot generation; its records are
//! sequence-numbered continuing from that generation, which is the
//! cumulative count of deltas ever journaled (see `docs/DURABILITY.md`
//! for the checkpoint/recovery protocol).
//!
//! ## File format (version 1, little-endian)
//!
//! ```text
//! header   "SCPMJRNL"  u32 version=1  u64 base_generation
//! record   u32 payload_len
//!          u64 seq                    base_generation + 1, + 2, …
//!          payload                    GraphDelta text (delta grammar)
//!          u64 checksum               FNV-1a 64 of seq_le ++ payload
//! ```
//!
//! The header is written atomically ([`crate::fault::write_atomic`]),
//! so a journal file either exists with a complete header or not at
//! all. Records are appended with a single write followed by an fsync;
//! the checksum covers the sequence number and payload of each record
//! individually.
//!
//! ## Reader semantics
//!
//! The reader distinguishes the two ways a journal can be damaged:
//!
//! * **Torn tail** — the file ends mid-record, or the *final* record
//!   fails its checksum: the expected leftovers of a crash during an
//!   append. The intact prefix is returned together with a
//!   [`TornTail`] report; [`repair_torn_tail`] truncates the file back
//!   to the intact prefix, and doing so is idempotent.
//! * **Mid-log corruption** — a checksum failure (or a checksummed but
//!   unparseable/out-of-sequence record) with more data behind it.
//!   That is bit rot or tampering, not a crash artifact, and the
//!   reader rejects the whole file with [`JournalError::Corrupt`]
//!   rather than silently dropping acknowledged writes.
//!
//! The reader never panics on arbitrary bytes; the proptests in
//! `crates/graph/tests/proptest_durability.rs` feed it truncations and
//! bit flips of valid journals plus raw fuzz.

use std::fs::{File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};

use crate::delta::GraphDelta;
use crate::fault::{write_atomic_with, FaultInjector};
use crate::snapshot::fnv1a64;

const MAGIC: &[u8; 8] = b"SCPMJRNL";

/// Current journal format version.
pub const VERSION: u32 = 1;

/// Header length in bytes: magic + version + base generation.
pub const HEADER_LEN: usize = 8 + 4 + 8;

/// Upper bound on a single record payload. A length prefix beyond this
/// is treated as damage rather than an instruction to allocate.
pub const MAX_PAYLOAD_LEN: u32 = 64 << 20;

/// Errors produced while reading or repairing a journal.
#[derive(Debug)]
pub enum JournalError {
    /// The file does not start with the journal magic.
    NotAJournal,
    /// Unsupported journal format version.
    BadVersion(u32),
    /// A damaged record with valid data behind it — bit rot or
    /// tampering, not a crash artifact. The journal is rejected
    /// wholesale; recovery must fall back to an older generation.
    Corrupt {
        /// Byte offset of the damaged record.
        offset: u64,
        /// What was wrong with it.
        detail: String,
    },
    /// Underlying I/O failure.
    Io(io::Error),
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::NotAJournal => write!(f, "not a scpm journal (bad magic)"),
            JournalError::BadVersion(v) => write!(
                f,
                "unsupported journal version {v} (this build reads version {VERSION})"
            ),
            JournalError::Corrupt { offset, detail } => {
                write!(f, "journal corrupt at byte {offset}: {detail}")
            }
            JournalError::Io(e) => write!(f, "journal i/o error: {e}"),
        }
    }
}

impl std::error::Error for JournalError {}

impl From<io::Error> for JournalError {
    fn from(e: io::Error) -> Self {
        JournalError::Io(e)
    }
}

/// Report of a torn tail: bytes past `valid_len` are the remnant of an
/// interrupted append and carry no acknowledged record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TornTail {
    /// Length of the intact prefix (header plus whole records).
    pub valid_len: u64,
    /// Number of damaged trailing bytes past the prefix.
    pub dropped_bytes: u64,
}

/// One decoded journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Sequence number (the graph generation this delta produces).
    pub seq: u64,
    /// The journaled delta.
    pub delta: GraphDelta,
}

/// A fully decoded journal.
#[derive(Debug)]
pub struct JournalRead {
    /// Snapshot generation this journal continues from.
    pub base_generation: u64,
    /// Intact records, in sequence order.
    pub records: Vec<JournalRecord>,
    /// Present when the file ends in a torn append.
    pub torn: Option<TornTail>,
}

impl JournalRead {
    /// Sequence number of the last intact record, or the base
    /// generation if the journal is empty.
    pub fn last_seq(&self) -> u64 {
        self.records
            .last()
            .map(|r| r.seq)
            .unwrap_or(self.base_generation)
    }
}

/// Decodes journal bytes. Torn tails are tolerated and reported;
/// mid-log corruption is an error. Never panics.
pub fn decode_journal(data: &[u8]) -> Result<JournalRead, JournalError> {
    if data.len() < 8 {
        // Header writes are atomic, so a short file is foreign, not torn.
        return Err(JournalError::NotAJournal);
    }
    if &data[..8] != MAGIC {
        return Err(JournalError::NotAJournal);
    }
    if data.len() < HEADER_LEN {
        return Err(JournalError::NotAJournal);
    }
    let version = u32::from_le_bytes(data[8..12].try_into().unwrap());
    if version != VERSION {
        return Err(JournalError::BadVersion(version));
    }
    let base_generation = u64::from_le_bytes(data[12..HEADER_LEN].try_into().unwrap());

    let mut records = Vec::new();
    let mut offset = HEADER_LEN;
    let total = data.len();
    let torn = loop {
        if offset == total {
            break None;
        }
        let torn_here = |off: usize| TornTail {
            valid_len: off as u64,
            dropped_bytes: (total - off) as u64,
        };
        if total - offset < 4 + 8 {
            break Some(torn_here(offset));
        }
        let len = u32::from_le_bytes(data[offset..offset + 4].try_into().unwrap());
        if len > MAX_PAYLOAD_LEN {
            // An absurd length prefix: a damaged frame with no
            // verifiable record behind it to prove acknowledged data
            // follows. Treat as a torn tail — truncation here drops
            // only unverifiable bytes, never a checksummed record.
            break Some(torn_here(offset));
        }
        let frame = 4 + 8 + len as usize + 8;
        if total - offset < frame {
            break Some(torn_here(offset));
        }
        let seq_start = offset + 4;
        let payload_start = seq_start + 8;
        let payload_end = payload_start + len as usize;
        let stored = u64::from_le_bytes(data[payload_end..payload_end + 8].try_into().unwrap());
        let computed = fnv1a64(&data[seq_start..payload_end]);
        if stored != computed {
            if offset + frame == total {
                // Final record: a checksum failure here is the classic
                // torn append (length landed, payload didn't).
                break Some(torn_here(offset));
            }
            return Err(JournalError::Corrupt {
                offset: offset as u64,
                detail: format!(
                    "record checksum mismatch (stored {stored:#018x}, computed {computed:#018x}) with {} bytes following",
                    total - (offset + frame)
                ),
            });
        }
        // Behind a valid checksum, structural failures are corruption
        // (or forgery), never crash artifacts.
        let seq = u64::from_le_bytes(data[seq_start..payload_start].try_into().unwrap());
        let expect = base_generation + records.len() as u64 + 1;
        if seq != expect {
            return Err(JournalError::Corrupt {
                offset: offset as u64,
                detail: format!("sequence number {seq} where {expect} was expected"),
            });
        }
        let text = std::str::from_utf8(&data[payload_start..payload_end]).map_err(|_| {
            JournalError::Corrupt {
                offset: offset as u64,
                detail: "payload is not valid UTF-8 behind a valid checksum".into(),
            }
        })?;
        let delta = GraphDelta::parse(text).map_err(|e| JournalError::Corrupt {
            offset: offset as u64,
            detail: format!("payload does not parse as a delta: {e}"),
        })?;
        records.push(JournalRecord { seq, delta });
        offset += frame;
    };
    Ok(JournalRead {
        base_generation,
        records,
        torn,
    })
}

/// Reads and decodes a journal file.
pub fn read_journal(path: impl AsRef<Path>) -> Result<JournalRead, JournalError> {
    let data = std::fs::read(path)?;
    decode_journal(&data)
}

/// Truncates a torn tail off a journal file, returning the report of
/// what was dropped (or `None` if the file was already intact).
/// Idempotent: repairing an intact journal is a no-op, and repairing
/// twice equals repairing once. Mid-log corruption is *not* repaired —
/// it is returned as an error, because truncating there would discard
/// acknowledged records.
pub fn repair_torn_tail(path: impl AsRef<Path>) -> Result<Option<TornTail>, JournalError> {
    let path = path.as_ref();
    let read = read_journal(path)?;
    if let Some(torn) = read.torn {
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(torn.valid_len)?;
        file.sync_all()?;
        Ok(Some(torn))
    } else {
        Ok(None)
    }
}

fn frame_record(seq: u64, delta: &GraphDelta) -> Vec<u8> {
    let payload = delta.render();
    let payload = payload.as_bytes();
    let mut frame = Vec::with_capacity(4 + 8 + payload.len() + 8);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&seq.to_le_bytes());
    frame.extend_from_slice(payload);
    let sum = fnv1a64(&frame[4..]);
    frame.extend_from_slice(&sum.to_le_bytes());
    frame
}

/// Append handle for a journal file.
///
/// Every append is write-ahead durable: the record is written and
/// fsynced before `append` returns its sequence number. A failed append
/// leaves no trace — the writer truncates the file back to its
/// pre-append length so a later append cannot bury torn bytes mid-log
/// (which the reader would reject as corruption). If even that repair
/// fails the writer poisons itself and refuses further appends.
#[derive(Debug)]
pub struct JournalWriter {
    file: File,
    path: PathBuf,
    injector: FaultInjector,
    len: u64,
    next_seq: u64,
    poisoned: bool,
}

impl JournalWriter {
    /// Creates a fresh journal for `base_generation` at `path`
    /// (atomically: the header lands via temp-file + rename, so a crash
    /// can never leave a half-written header).
    pub fn create(path: impl AsRef<Path>, base_generation: u64) -> io::Result<JournalWriter> {
        JournalWriter::create_with(&FaultInjector::none(), path.as_ref(), base_generation)
    }

    /// [`JournalWriter::create`] with fault injection over the header
    /// write and all subsequent appends.
    pub fn create_with(
        inj: &FaultInjector,
        path: &Path,
        base_generation: u64,
    ) -> io::Result<JournalWriter> {
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(MAGIC);
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.extend_from_slice(&base_generation.to_le_bytes());
        write_atomic_with(inj, path, &header)?;
        let file = OpenOptions::new().append(true).open(path)?;
        Ok(JournalWriter {
            file,
            path: path.to_path_buf(),
            injector: inj.clone(),
            len: HEADER_LEN as u64,
            next_seq: base_generation + 1,
            poisoned: false,
        })
    }

    /// Opens an existing journal for appending, repairing a torn tail
    /// first. Mid-log corruption is refused ([`JournalError::Corrupt`]).
    pub fn open_append(
        path: impl AsRef<Path>,
    ) -> Result<(JournalWriter, JournalRead), JournalError> {
        JournalWriter::open_append_with(&FaultInjector::none(), path.as_ref())
    }

    /// [`JournalWriter::open_append`] with fault injection over
    /// subsequent appends (the torn-tail repair itself is recovery-side
    /// and not a fault point).
    pub fn open_append_with(
        inj: &FaultInjector,
        path: &Path,
    ) -> Result<(JournalWriter, JournalRead), JournalError> {
        repair_torn_tail(path)?;
        let read = read_journal(path)?;
        debug_assert!(read.torn.is_none());
        let file = OpenOptions::new().append(true).open(path)?;
        let len = file.metadata()?.len();
        Ok((
            JournalWriter {
                file,
                path: path.to_path_buf(),
                injector: inj.clone(),
                len,
                next_seq: read.last_seq() + 1,
                poisoned: false,
            },
            read,
        ))
    }

    /// Path of the journal file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Sequence number the next successful append will return.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Appends one delta: write the framed record, fsync, return its
    /// sequence number. On failure the record is rolled back (truncate
    /// to the pre-append length) and the error is returned; the caller
    /// must treat the delta as not committed.
    pub fn append(&mut self, delta: &GraphDelta) -> io::Result<u64> {
        if self.poisoned {
            return Err(io::Error::other(
                "journal writer poisoned by an earlier failed rollback",
            ));
        }
        let seq = self.next_seq;
        let frame = frame_record(seq, delta);
        let result = (|| {
            self.injector.write(&mut self.file, &frame)?;
            self.injector.sync(&self.file)
        })();
        match result {
            Ok(()) => {
                self.len += frame.len() as u64;
                self.next_seq += 1;
                Ok(seq)
            }
            Err(e) => {
                // Roll the torn bytes back so the next append (if the
                // process survives) cannot bury them mid-log. Plain fs
                // calls: this is failure handling, not a fault point.
                let rollback = self
                    .file
                    .set_len(self.len)
                    .and_then(|()| self.file.sync_all());
                if rollback.is_err() {
                    self.poisoned = true;
                }
                Err(e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultMode, FaultPlan};

    fn tdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("scpm_journal_{name}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn sample_deltas() -> Vec<GraphDelta> {
        vec![
            GraphDelta::parse("v 2\ne 0 1\n").unwrap(),
            GraphDelta::parse("a 0 red blue\n").unwrap(),
            GraphDelta::parse("v 1\ne 1 2\na 2 green\n").unwrap(),
        ]
    }

    fn write_sample(path: &Path, base: u64) -> Vec<u64> {
        let mut w = JournalWriter::create(path, base).unwrap();
        sample_deltas()
            .iter()
            .map(|d| w.append(d).unwrap())
            .collect()
    }

    #[test]
    fn roundtrip_and_sequencing() {
        let dir = tdir("roundtrip");
        let path = dir.join("j.wal");
        let seqs = write_sample(&path, 10);
        assert_eq!(seqs, vec![11, 12, 13]);
        let read = read_journal(&path).unwrap();
        assert_eq!(read.base_generation, 10);
        assert!(read.torn.is_none());
        assert_eq!(read.last_seq(), 13);
        let expect = sample_deltas();
        assert_eq!(read.records.len(), expect.len());
        for (rec, d) in read.records.iter().zip(&expect) {
            assert_eq!(rec.delta.render(), d.render());
        }
    }

    #[test]
    fn empty_journal_reads_back_empty() {
        let dir = tdir("empty");
        let path = dir.join("j.wal");
        JournalWriter::create(&path, 5).unwrap();
        let read = read_journal(&path).unwrap();
        assert_eq!(read.base_generation, 5);
        assert!(read.records.is_empty());
        assert_eq!(read.last_seq(), 5);
    }

    #[test]
    fn every_truncation_is_tolerated_never_panics() {
        let dir = tdir("truncate");
        let path = dir.join("j.wal");
        write_sample(&path, 0);
        let raw = std::fs::read(&path).unwrap();
        // Record frame boundaries for the prefix-count oracle.
        let mut boundaries = vec![HEADER_LEN];
        {
            let mut off = HEADER_LEN;
            while off < raw.len() {
                let len = u32::from_le_bytes(raw[off..off + 4].try_into().unwrap()) as usize;
                off += 4 + 8 + len + 8;
                boundaries.push(off);
            }
        }
        for cut in 0..raw.len() {
            let r = decode_journal(&raw[..cut]);
            if cut < HEADER_LEN {
                assert!(
                    matches!(r, Err(JournalError::NotAJournal)),
                    "cut {cut}: {r:?}"
                );
                continue;
            }
            let read = r.unwrap_or_else(|e| panic!("cut {cut} rejected: {e}"));
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(read.records.len(), whole, "cut {cut}");
            let on_boundary = boundaries.contains(&cut);
            assert_eq!(read.torn.is_some(), !on_boundary, "cut {cut}");
            if let Some(torn) = read.torn {
                assert_eq!(torn.valid_len, boundaries[whole] as u64);
                assert_eq!(torn.dropped_bytes as usize, cut - boundaries[whole]);
            }
        }
    }

    #[test]
    fn mid_log_corruption_is_rejected_not_truncated() {
        let dir = tdir("midlog");
        let path = dir.join("j.wal");
        write_sample(&path, 0);
        let raw = std::fs::read(&path).unwrap();
        // Flip a payload byte of the FIRST record: two intact records
        // follow, so this must be Corrupt, not a torn tail.
        let mut bad = raw.clone();
        bad[HEADER_LEN + 4 + 8] ^= 0x01;
        match decode_journal(&bad) {
            Err(JournalError::Corrupt { offset, .. }) => {
                assert_eq!(offset, HEADER_LEN as u64)
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        // The same flip in the LAST record is a torn tail.
        let last_start = {
            let mut off = HEADER_LEN;
            let mut prev = off;
            while off < raw.len() {
                let len = u32::from_le_bytes(raw[off..off + 4].try_into().unwrap()) as usize;
                prev = off;
                off += 4 + 8 + len + 8;
            }
            prev
        };
        let mut torn = raw.clone();
        torn[last_start + 4 + 8] ^= 0x01;
        let read = decode_journal(&torn).unwrap();
        assert_eq!(read.records.len(), 2);
        assert_eq!(read.torn.unwrap().valid_len, last_start as u64);
    }

    #[test]
    fn repair_is_idempotent_and_append_resumes() {
        let dir = tdir("repair");
        let path = dir.join("j.wal");
        write_sample(&path, 0);
        let full = std::fs::read(&path).unwrap();
        // Tear the tail: drop the last 5 bytes of the file.
        std::fs::write(&path, &full[..full.len() - 5]).unwrap();
        let first = repair_torn_tail(&path).unwrap().expect("tail was torn");
        assert!(first.dropped_bytes > 0);
        // Idempotent: a second repair finds nothing to do.
        assert_eq!(repair_torn_tail(&path).unwrap(), None);
        let after = std::fs::read(&path).unwrap();
        assert_eq!(after.len() as u64, first.valid_len);
        // Appending after repair resumes the sequence where the intact
        // prefix left off.
        let (mut w, read) = JournalWriter::open_append(&path).unwrap();
        assert_eq!(read.records.len(), 2);
        let seq = w.append(&GraphDelta::parse("v 1\n").unwrap()).unwrap();
        assert_eq!(seq, 3);
        let reread = read_journal(&path).unwrap();
        assert!(reread.torn.is_none());
        assert_eq!(reread.last_seq(), 3);
    }

    #[test]
    fn failed_append_rolls_back_cleanly() {
        let dir = tdir("rollback");
        let path = dir.join("j.wal");
        // Ops: header write_atomic = 4 (create, write, sync, rename);
        // first append = write(4) sync(5); fail the second append's
        // write (op 6) as a short write.
        let inj = FaultInjector::plan(FaultPlan {
            op_index: 6,
            mode: FaultMode::ShortWrite,
        });
        let mut w = JournalWriter::create_with(&inj, &path, 0).unwrap();
        let deltas = sample_deltas();
        assert_eq!(w.append(&deltas[0]).unwrap(), 1);
        assert!(w.append(&deltas[1]).is_err());
        // The torn bytes were rolled back: the file reads intact with
        // exactly one record, and the writer can keep appending.
        let read = read_journal(&path).unwrap();
        assert!(read.torn.is_none());
        assert_eq!(read.records.len(), 1);
        assert_eq!(w.append(&deltas[2]).unwrap(), 2);
        assert_eq!(read_journal(&path).unwrap().last_seq(), 2);
    }

    #[test]
    fn crashed_append_leaves_recoverable_torn_tail() {
        let dir = tdir("crashtail");
        let path = dir.join("j.wal");
        let inj = FaultInjector::plan(FaultPlan {
            op_index: 4, // the first append's write
            mode: FaultMode::Crash,
        });
        let mut w = JournalWriter::create_with(&inj, &path, 0).unwrap();
        let e = w.append(&sample_deltas()[0]).unwrap_err();
        assert!(crate::fault::is_injected_crash(&e));
        // NOTE: the writer attempted a rollback with plain fs calls,
        // which succeed even after the injector crashed — matching a
        // kernel completing queued I/O. Simulate the stricter case (no
        // rollback reached the disk) by re-tearing the file.
        let full_header = std::fs::read(&path).unwrap();
        let mut torn = full_header;
        torn.extend_from_slice(&[7u8; 9]); // garbage half-frame
        std::fs::write(&path, &torn).unwrap();
        let read = read_journal(&path).unwrap();
        assert!(read.records.is_empty());
        assert_eq!(read.torn.unwrap().dropped_bytes, 9);
        repair_torn_tail(&path).unwrap().unwrap();
        assert!(read_journal(&path).unwrap().torn.is_none());
    }

    #[test]
    fn foreign_and_stale_files_are_rejected() {
        assert!(matches!(
            decode_journal(b"not a journal at all"),
            Err(JournalError::NotAJournal)
        ));
        assert!(matches!(
            decode_journal(b""),
            Err(JournalError::NotAJournal)
        ));
        let mut stale = Vec::new();
        stale.extend_from_slice(MAGIC);
        stale.extend_from_slice(&99u32.to_le_bytes());
        stale.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            decode_journal(&stale),
            Err(JournalError::BadVersion(99))
        ));
    }

    #[test]
    fn absurd_length_prefix_is_a_torn_tail_not_an_allocation() {
        let dir = tdir("absurd");
        let path = dir.join("j.wal");
        JournalWriter::create(&path, 0).unwrap();
        let mut raw = std::fs::read(&path).unwrap();
        raw.extend_from_slice(&u32::MAX.to_le_bytes());
        raw.extend_from_slice(&1u64.to_le_bytes());
        raw.extend_from_slice(&[0u8; 32]);
        let read = decode_journal(&raw).unwrap();
        assert!(read.records.is_empty());
        assert_eq!(read.torn.unwrap().valid_len, HEADER_LEN as u64);
    }
}
