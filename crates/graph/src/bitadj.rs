//! Packed `u64`-word bitsets for the mining hot path.
//!
//! The quasi-clique search spends nearly all of its time answering two
//! questions — *is `{u, v}` an edge?* and *how many candidates does `v`
//! neighbor?* — over induced subgraphs that are small (post vertex
//! reduction) and dense. Sorted-slice scans answer them in `O(deg)` /
//! `O(log deg)`; this module answers them word-parallel:
//!
//! * [`VertexBitset`] — a packed vertex set with intersect / difference /
//!   popcount kernels that touch `⌈n/64⌉` words instead of `n` elements.
//! * [`BitAdjacency`] — a dense bit matrix over a (sub)graph: `O(1)` edge
//!   tests and popcount-based degree / external-degree counting, built
//!   once per induced subgraph and reused across the whole search.
//!
//! Both types are deliberately *local-id* structures: they are sized by the
//! vertex count of one [`CsrGraph`] (usually an
//! induced subgraph) and are rebuilt — reusing their allocations — when the
//! graph changes. See `docs/PERFORMANCE.md` for how the engine layers use
//! them and for the modeled-cost counters that compare the two
//! representations.

use crate::csr::{CsrGraph, VertexId};

/// Bits per storage word.
pub const WORD_BITS: usize = 64;

/// Number of `u64` words needed for an `n`-bit set.
#[inline]
pub const fn words_for(n: usize) -> usize {
    n.div_ceil(WORD_BITS)
}

/// Counts `|a ∩ b|` for two packed word slices (zip-truncated to the
/// shorter slice). This is the workhorse kernel behind every bitset
/// external-degree computation.
#[inline]
pub fn intersect_word_count(a: &[u64], b: &[u64]) -> usize {
    a.iter()
        .zip(b.iter())
        .map(|(&x, &y)| (x & y).count_ones() as usize)
        .sum()
}

/// A packed vertex set over a fixed universe `0..n`.
///
/// ```
/// use scpm_graph::bitadj::VertexBitset;
///
/// let a = VertexBitset::from_sorted(130, &[0, 64, 128]);
/// let b = VertexBitset::from_sorted(130, &[64, 129]);
/// assert_eq!(a.count(), 3);
/// assert!(a.contains(64));
/// assert_eq!(a.intersect_count(&b), 1);
/// assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 64, 128]);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VertexBitset {
    n: usize,
    words: Vec<u64>,
}

impl VertexBitset {
    /// The empty set over the universe `0..n`.
    pub fn empty(n: usize) -> Self {
        VertexBitset {
            n,
            words: vec![0; words_for(n)],
        }
    }

    /// Builds a set over `0..n` from a sorted, duplicate-free slice.
    pub fn from_sorted(n: usize, set: &[VertexId]) -> Self {
        let mut bits = Self::empty(n);
        for &v in set {
            bits.insert(v);
        }
        bits
    }

    /// Clears the set and re-sizes it for the universe `0..n`, keeping the
    /// word allocation.
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.words.clear();
        self.words.resize(words_for(n), 0);
    }

    /// Size of the universe (`n`, *not* the member count).
    #[inline]
    pub fn universe(&self) -> usize {
        self.n
    }

    /// The packed words backing the set.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of storage words (`⌈n/64⌉`).
    #[inline]
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Inserts `v` (must be `< n`).
    #[inline]
    pub fn insert(&mut self, v: VertexId) {
        self.words[v as usize / WORD_BITS] |= 1u64 << (v as usize % WORD_BITS);
    }

    /// Removes `v` (must be `< n`).
    #[inline]
    pub fn remove(&mut self, v: VertexId) {
        self.words[v as usize / WORD_BITS] &= !(1u64 << (v as usize % WORD_BITS));
    }

    /// Membership test, `O(1)`.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.words[v as usize / WORD_BITS] & (1u64 << (v as usize % WORD_BITS)) != 0
    }

    /// Member count (popcount over all words).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `|self ∩ other|` without materializing the intersection.
    #[inline]
    pub fn intersect_count(&self, other: &VertexBitset) -> usize {
        intersect_word_count(&self.words, &other.words)
    }

    /// `|self ∩ words|` against a raw packed row (e.g. a
    /// [`BitAdjacency`] row).
    #[inline]
    pub fn intersect_count_words(&self, words: &[u64]) -> usize {
        intersect_word_count(&self.words, words)
    }

    /// In-place intersection `self &= other`.
    pub fn intersect_with(&mut self, other: &VertexBitset) {
        for (w, &o) in self.words.iter_mut().zip(other.words.iter()) {
            *w &= o;
        }
    }

    /// In-place difference `self &= !other`.
    pub fn difference_with(&mut self, other: &VertexBitset) {
        for (w, &o) in self.words.iter_mut().zip(other.words.iter()) {
            *w &= !o;
        }
    }

    /// Whether `self ⊆ other`, in `⌈n/64⌉` word operations.
    pub fn is_subset_of(&self, other: &VertexBitset) -> bool {
        self.words
            .iter()
            .zip(other.words.iter())
            .all(|(&a, &b)| a & !b == 0)
    }

    /// Iterates the members in ascending order.
    pub fn iter(&self) -> SetBits<'_> {
        SetBits {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The members as a sorted `Vec`.
    pub fn to_vec(&self) -> Vec<VertexId> {
        self.iter().collect()
    }
}

/// Ascending iterator over the set bits of a [`VertexBitset`].
pub struct SetBits<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for SetBits<'_> {
    type Item = VertexId;

    fn next(&mut self) -> Option<VertexId> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some((self.word_idx * WORD_BITS + bit) as VertexId)
    }
}

/// A dense packed adjacency matrix for a (small) graph.
///
/// One row of `⌈n/64⌉` words per vertex; symmetric since the graphs are
/// undirected. Intended for *induced subgraphs* after vertex reduction —
/// the engine caps the vertex count it will pack (see
/// [`scpm_quasiclique`-level docs]) and falls back to slice scans beyond
/// it, because the matrix is `n²` bits.
///
/// ```
/// use scpm_graph::bitadj::BitAdjacency;
/// use scpm_graph::builder::graph_from_edges;
///
/// let g = graph_from_edges(4, [(0, 1), (1, 2), (2, 3)]);
/// let adj = BitAdjacency::from_csr(&g);
/// assert!(adj.has_edge(1, 2));
/// assert!(!adj.has_edge(0, 3));
/// assert_eq!(adj.degree(1), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct BitAdjacency {
    n: usize,
    stride: usize,
    bits: Vec<u64>,
}

impl BitAdjacency {
    /// An empty 0-vertex matrix; populate with [`BitAdjacency::rebuild`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Packs the adjacency of `g`.
    pub fn from_csr(g: &CsrGraph) -> Self {
        let mut adj = Self::new();
        adj.rebuild(g);
        adj
    }

    /// Re-packs the matrix for `g`, reusing the word allocation.
    pub fn rebuild(&mut self, g: &CsrGraph) {
        let n = g.num_vertices();
        self.n = n;
        self.stride = words_for(n);
        self.bits.clear();
        self.bits.resize(n * self.stride, 0);
        for u in 0..n as VertexId {
            let base = u as usize * self.stride;
            let row = &mut self.bits[base..base + self.stride];
            for &v in g.neighbors(u) {
                row[v as usize / WORD_BITS] |= 1u64 << (v as usize % WORD_BITS);
            }
        }
    }

    /// Drops the packed contents (keeps the allocation for later reuse).
    pub fn clear(&mut self) {
        self.n = 0;
        self.stride = 0;
        self.bits.clear();
    }

    /// Number of vertices the matrix covers.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Words per row (`⌈n/64⌉`).
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The packed neighbor row of `v`.
    #[inline]
    pub fn row(&self, v: VertexId) -> &[u64] {
        let base = v as usize * self.stride;
        &self.bits[base..base + self.stride]
    }

    /// `O(1)` edge test.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.bits[u as usize * self.stride + v as usize / WORD_BITS]
            & (1u64 << (v as usize % WORD_BITS))
            != 0
    }

    /// Degree of `v` via row popcount.
    pub fn degree(&self, v: VertexId) -> usize {
        self.row(v).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `|N(v) ∩ set|` — the popcount kernel behind exdeg/indeg updates.
    #[inline]
    pub fn degree_within(&self, v: VertexId, set: &VertexBitset) -> usize {
        set.intersect_count_words(self.row(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn bitset_basics_across_word_boundaries() {
        let mut b = VertexBitset::empty(130);
        for v in [0u32, 63, 64, 127, 128, 129] {
            b.insert(v);
        }
        assert_eq!(b.count(), 6);
        assert!(b.contains(63) && b.contains(64) && b.contains(129));
        assert!(!b.contains(1));
        b.remove(64);
        assert!(!b.contains(64));
        assert_eq!(b.to_vec(), vec![0, 63, 127, 128, 129]);
        assert_eq!(b.num_words(), 3);
    }

    #[test]
    fn bitset_kernels() {
        let a = VertexBitset::from_sorted(200, &[1, 5, 70, 130, 199]);
        let b = VertexBitset::from_sorted(200, &[5, 70, 131]);
        assert_eq!(a.intersect_count(&b), 2);
        let mut c = a.clone();
        c.intersect_with(&b);
        assert_eq!(c.to_vec(), vec![5, 70]);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.to_vec(), vec![1, 130, 199]);
        assert!(c.is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
        assert!(VertexBitset::empty(200).is_subset_of(&b));
        assert!(VertexBitset::empty(200).is_empty());
    }

    #[test]
    fn bitset_reset_reuses_allocation() {
        let mut b = VertexBitset::from_sorted(100, &[1, 2, 3]);
        b.reset(65);
        assert_eq!(b.universe(), 65);
        assert_eq!(b.count(), 0);
        b.insert(64);
        assert_eq!(b.to_vec(), vec![64]);
    }

    #[test]
    fn adjacency_matches_csr() {
        let g = graph_from_edges(70, [(0, 1), (0, 69), (1, 69), (5, 64), (64, 69)]);
        let adj = BitAdjacency::from_csr(&g);
        assert_eq!(adj.num_vertices(), 70);
        for u in 0..70u32 {
            assert_eq!(adj.degree(u), g.degree(u), "degree of {u}");
            for v in 0..70u32 {
                assert_eq!(adj.has_edge(u, v), g.has_edge(u, v), "edge {u}-{v}");
            }
        }
        let set = VertexBitset::from_sorted(70, &[1, 5, 69]);
        assert_eq!(adj.degree_within(0, &set), 2);
        assert_eq!(adj.degree_within(64, &set), 2);
    }

    #[test]
    fn rebuild_resizes() {
        let g1 = graph_from_edges(3, [(0, 1)]);
        let g2 = graph_from_edges(80, [(0, 79)]);
        let mut adj = BitAdjacency::from_csr(&g1);
        adj.rebuild(&g2);
        assert_eq!(adj.num_vertices(), 80);
        assert_eq!(adj.stride(), 2);
        assert!(adj.has_edge(79, 0));
        assert!(!adj.has_edge(0, 1));
        adj.clear();
        assert_eq!(adj.num_vertices(), 0);
    }

    #[test]
    fn empty_universe() {
        let b = VertexBitset::empty(0);
        assert_eq!(b.count(), 0);
        assert_eq!(b.iter().count(), 0);
        let adj = BitAdjacency::from_csr(&CsrGraph::empty(0));
        assert_eq!(adj.num_vertices(), 0);
    }
}
