//! Packed `u64`-word bitsets for the mining hot path.
//!
//! The quasi-clique search spends nearly all of its time answering two
//! questions — *is `{u, v}` an edge?* and *how many candidates does `v`
//! neighbor?* — over induced subgraphs that are small (post vertex
//! reduction) and dense. Sorted-slice scans answer them in `O(deg)` /
//! `O(log deg)`; this module answers them word-parallel:
//!
//! * [`VertexBitset`] — a packed vertex set with intersect / difference /
//!   popcount kernels that touch `⌈n/64⌉` words instead of `n` elements,
//!   plus a one-summary-word-per-[`SUMMARY_GROUP_WORDS`]-words hierarchy
//!   that lets kernels skip empty 8-word blocks in `O(1)`.
//! * [`BitAdjacency`] — a dense bit matrix over a (sub)graph: `O(1)` edge
//!   tests and popcount-based degree / external-degree counting, built
//!   once per induced subgraph and reused across the whole search.
//!
//! The free kernels at the bottom ([`intersect_popcount`],
//! [`and_not_count`], [`difference_is_empty`],
//! [`gather_intersect_popcount`]) are *blocked*: they process words in
//! [`LANE_WORDS`]-wide chunks with per-lane accumulators so stable Rust
//! auto-vectorizes them (no `portable_simd`), and they fuse the combining
//! operation with the reduction — a single pass computes
//! "intersect **and** count" instead of materializing the intersection
//! first.
//!
//! Both types are deliberately *local-id* structures: they are sized by the
//! vertex count of one [`CsrGraph`] (usually an
//! induced subgraph) and are rebuilt — reusing their allocations — when the
//! graph changes. See `docs/PERFORMANCE.md` for how the engine layers use
//! them and for the modeled-cost counters that compare the two
//! representations.

use crate::csr::{CsrGraph, VertexId};

/// Bits per storage word.
pub const WORD_BITS: usize = 64;

/// Words per auto-vectorization block: the blocked kernels process
/// `LANE_WORDS` words per iteration with independent accumulators, which
/// is the shape LLVM turns into SIMD on stable Rust.
pub const LANE_WORDS: usize = 4;

/// Data words summarized per summary word: bit `j` of summary word `i` is
/// set iff data word `8·i + j` is nonzero, so an all-zero summary word
/// certifies an empty 8-word block in one load.
pub const SUMMARY_GROUP_WORDS: usize = 8;

/// Number of `u64` words needed for an `n`-bit set.
#[inline]
pub const fn words_for(n: usize) -> usize {
    n.div_ceil(WORD_BITS)
}

/// Number of summary words covering `words` data words.
#[inline]
pub const fn summary_words_for(words: usize) -> usize {
    words.div_ceil(SUMMARY_GROUP_WORDS)
}

/// The valid-bit mask of the **last** storage word of an `n`-bit set: bits
/// at positions `≥ n` must be zero in a canonical [`VertexBitset`] (see
/// [`VertexBitset::canonical`]). All-ones when `n` is a multiple of 64
/// (and for `n = 0`, where there is no last word).
#[inline]
pub const fn tail_mask(n: usize) -> u64 {
    let r = n % WORD_BITS;
    if r == 0 {
        u64::MAX
    } else {
        (1u64 << r) - 1
    }
}

/// Fused `|a ∩ b|`: AND + popcount in one blocked pass (no intermediate
/// set is materialized). Slices are zip-truncated to the shorter length;
/// same-universe callers pass equal lengths.
///
/// Equivalent to `intersect_with` followed by `count`, verified by
/// property test against that composition.
#[inline]
pub fn intersect_popcount(a: &[u64], b: &[u64]) -> usize {
    let n = a.len().min(b.len());
    let (a, b) = (&a[..n], &b[..n]);
    let mut lanes = [0u64; LANE_WORDS];
    let mut ca = a.chunks_exact(LANE_WORDS);
    let mut cb = b.chunks_exact(LANE_WORDS);
    for (xs, ys) in (&mut ca).zip(&mut cb) {
        for l in 0..LANE_WORDS {
            lanes[l] += (xs[l] & ys[l]).count_ones() as u64;
        }
    }
    let mut total: u64 = lanes.iter().sum();
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        total += (x & y).count_ones() as u64;
    }
    total as usize
}

/// Fused `|a \ b|`: AND-NOT + popcount in one blocked pass. Words of `a`
/// beyond `b`'s length belong to the difference and are counted.
///
/// Equivalent to `difference_with` followed by `count`.
#[inline]
pub fn and_not_count(a: &[u64], b: &[u64]) -> usize {
    let n = a.len().min(b.len());
    let mut lanes = [0u64; LANE_WORDS];
    let mut ca = a[..n].chunks_exact(LANE_WORDS);
    let mut cb = b[..n].chunks_exact(LANE_WORDS);
    for (xs, ys) in (&mut ca).zip(&mut cb) {
        for l in 0..LANE_WORDS {
            lanes[l] += (xs[l] & !ys[l]).count_ones() as u64;
        }
    }
    let mut total: u64 = lanes.iter().sum();
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        total += (x & !y).count_ones() as u64;
    }
    for &x in &a[n..] {
        total += x.count_ones() as u64;
    }
    total as usize
}

/// Fused subset test: whether `a \ b = ∅` (i.e. `a ⊆ b`), processed in
/// [`LANE_WORDS`]-word blocks with an early exit per block. Words of `a`
/// beyond `b`'s length must be zero for the difference to be empty.
///
/// Equivalent to `and_not_count(a, b) == 0` without always touching every
/// word.
#[inline]
pub fn difference_is_empty(a: &[u64], b: &[u64]) -> bool {
    let n = a.len().min(b.len());
    let mut ca = a[..n].chunks_exact(LANE_WORDS);
    let mut cb = b[..n].chunks_exact(LANE_WORDS);
    for (xs, ys) in (&mut ca).zip(&mut cb) {
        let mut block = 0u64;
        for l in 0..LANE_WORDS {
            block |= xs[l] & !ys[l];
        }
        if block != 0 {
            return false;
        }
    }
    for (&x, &y) in ca.remainder().iter().zip(cb.remainder()) {
        if x & !y != 0 {
            return false;
        }
    }
    a[n..].iter().all(|&x| x == 0)
}

/// Fused sparse `|a ∩ b|` restricted to the word indices in `idx`
/// (typically the [`VertexBitset::active_words_into`] list of `b`): one
/// AND + popcount per listed word, skipping everything else.
///
/// Correct whenever every nonzero word of `a ∩ b` is listed in `idx` —
/// guaranteed when `idx` covers all nonzero words of either operand.
#[inline]
pub fn gather_intersect_popcount(a: &[u64], b: &[u64], idx: &[u32]) -> usize {
    let mut total = 0u64;
    for &wi in idx {
        let wi = wi as usize;
        total += (a[wi] & b[wi]).count_ones() as u64;
    }
    total as usize
}

/// Counts `|a ∩ b|` for two packed word slices (zip-truncated to the
/// shorter slice). Thin alias of [`intersect_popcount`], kept under the
/// historical name.
#[inline]
pub fn intersect_word_count(a: &[u64], b: &[u64]) -> usize {
    intersect_popcount(a, b)
}

/// Whether this build carries the explicit-SIMD kernel backends (the
/// `simd` cargo feature). Without it every backend request resolves to
/// [`KernelBackend::Scalar`]; the CLI uses this to reject `--repr simd`
/// on builds that cannot honor it.
#[inline]
pub const fn simd_compiled() -> bool {
    cfg!(feature = "simd")
}

/// Which implementation executes the word-parallel kernels.
///
/// The dispatch ladder is: explicit AVX2 (`x86_64`, runtime-detected) →
/// explicit NEON (`aarch64`) → the [`LANE_WORDS`]-blocked scalar loops
/// that stable rustc auto-vectorizes. Every backend computes bit-for-bit
/// identical results — the per-kernel equivalence property tests pin each
/// SIMD kernel to its scalar twin — so backend choice can never change a
/// search outcome, only the instructions retiring per word.
///
/// The engine resolves a backend **once at pack time** (when the dense
/// [`BitAdjacency`] is built) via [`detect_kernel_backend`] and threads it
/// through the `*_with` kernel entry points; per-call dispatch is a
/// predictable branch on an enum already in a register.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum KernelBackend {
    /// Blocked scalar loops (always available, the portable fallback).
    #[default]
    Scalar,
    /// 256-bit AVX2 kernels (`x86_64` with runtime `avx2` detection).
    Avx2,
    /// 128-bit NEON kernels (`aarch64`, baseline feature).
    Neon,
}

impl KernelBackend {
    /// Human-readable backend name for logs and perf reports.
    pub fn name(self) -> &'static str {
        match self {
            KernelBackend::Scalar => "scalar",
            KernelBackend::Avx2 => "avx2",
            KernelBackend::Neon => "neon",
        }
    }
}

/// Picks the best kernel backend this build *and* this CPU support.
///
/// Returns [`KernelBackend::Scalar`] unless the `simd` feature is
/// compiled in; with it, `x86_64` hosts probe `avx2` at runtime (the
/// result is cached by `std`) and `aarch64` hosts use NEON
/// unconditionally (it is a baseline feature of the architecture).
pub fn detect_kernel_backend() -> KernelBackend {
    #[cfg(all(feature = "simd", target_arch = "x86_64"))]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return KernelBackend::Avx2;
        }
    }
    #[cfg(all(feature = "simd", target_arch = "aarch64"))]
    {
        return KernelBackend::Neon;
    }
    #[allow(unreachable_code)]
    KernelBackend::Scalar
}

/// [`intersect_popcount`] through an explicit backend. A SIMD backend
/// that this build or architecture cannot execute falls back to scalar,
/// so callers may pass any backend obtained from
/// [`detect_kernel_backend`] (possibly on another build) safely.
#[inline]
pub fn intersect_popcount_with(backend: KernelBackend, a: &[u64], b: &[u64]) -> usize {
    match backend {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: Avx2 is only produced by detect_kernel_backend after a
        // positive runtime probe; a hand-constructed value on a non-AVX2
        // CPU is the caller's contract violation.
        KernelBackend::Avx2 => unsafe { avx2::intersect_popcount(a, b) },
        #[cfg(all(feature = "simd", target_arch = "aarch64"))]
        KernelBackend::Neon => neon::intersect_popcount(a, b),
        _ => intersect_popcount(a, b),
    }
}

/// [`and_not_count`] through an explicit backend (see
/// [`intersect_popcount_with`] for the fallback contract).
#[inline]
pub fn and_not_count_with(backend: KernelBackend, a: &[u64], b: &[u64]) -> usize {
    match backend {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: see intersect_popcount_with.
        KernelBackend::Avx2 => unsafe { avx2::and_not_count(a, b) },
        #[cfg(all(feature = "simd", target_arch = "aarch64"))]
        KernelBackend::Neon => neon::and_not_count(a, b),
        _ => and_not_count(a, b),
    }
}

/// [`difference_is_empty`] through an explicit backend (see
/// [`intersect_popcount_with`] for the fallback contract).
#[inline]
pub fn difference_is_empty_with(backend: KernelBackend, a: &[u64], b: &[u64]) -> bool {
    match backend {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: see intersect_popcount_with.
        KernelBackend::Avx2 => unsafe { avx2::difference_is_empty(a, b) },
        #[cfg(all(feature = "simd", target_arch = "aarch64"))]
        KernelBackend::Neon => neon::difference_is_empty(a, b),
        _ => difference_is_empty(a, b),
    }
}

/// [`gather_intersect_popcount`] through an explicit backend (see
/// [`intersect_popcount_with`] for the fallback contract).
#[inline]
pub fn gather_intersect_popcount_with(
    backend: KernelBackend,
    a: &[u64],
    b: &[u64],
    idx: &[u32],
) -> usize {
    match backend {
        #[cfg(all(feature = "simd", target_arch = "x86_64"))]
        // SAFETY: see intersect_popcount_with.
        KernelBackend::Avx2 => unsafe { avx2::gather_intersect_popcount(a, b, idx) },
        #[cfg(all(feature = "simd", target_arch = "aarch64"))]
        KernelBackend::Neon => neon::gather_intersect_popcount(a, b, idx),
        _ => gather_intersect_popcount(a, b, idx),
    }
}

/// Explicit 256-bit AVX2 kernels. Popcounts use the nibble-lookup
/// (`vpshufb`) + `vpsadbw` reduction, the standard in-register AVX2
/// popcount; remainder words (fewer than [`LANE_WORDS`]) fall back to
/// scalar `count_ones`, matching the blocked-scalar twins bit for bit.
#[cfg(all(feature = "simd", target_arch = "x86_64"))]
mod avx2 {
    use core::arch::x86_64::*;

    /// Per-byte popcount of `v`, summed per 64-bit lane (`vpsadbw`).
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn popcount_lanes(v: __m256i) -> __m256i {
        let lookup = _mm256_setr_epi8(
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, // low 128
            0, 1, 1, 2, 1, 2, 2, 3, 1, 2, 2, 3, 2, 3, 3, 4, // high 128
        );
        let low_mask = _mm256_set1_epi8(0x0f);
        let lo = _mm256_and_si256(v, low_mask);
        let hi = _mm256_and_si256(_mm256_srli_epi32::<4>(v), low_mask);
        let cnt = _mm256_add_epi8(
            _mm256_shuffle_epi8(lookup, lo),
            _mm256_shuffle_epi8(lookup, hi),
        );
        _mm256_sad_epu8(cnt, _mm256_setzero_si256())
    }

    /// Horizontal sum of the four 64-bit lanes of `v`.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn hsum_u64(v: __m256i) -> u64 {
        let s = _mm_add_epi64(_mm256_castsi256_si128(v), _mm256_extracti128_si256::<1>(v));
        (_mm_extract_epi64::<0>(s) as u64).wrapping_add(_mm_extract_epi64::<1>(s) as u64)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn intersect_popcount(a: &[u64], b: &[u64]) -> usize {
        let n = a.len().min(b.len());
        let chunks = n / 4;
        let mut acc = _mm256_setzero_si256();
        for i in 0..chunks {
            let va = _mm256_loadu_si256(a.as_ptr().add(i * 4) as *const __m256i);
            let vb = _mm256_loadu_si256(b.as_ptr().add(i * 4) as *const __m256i);
            acc = _mm256_add_epi64(acc, popcount_lanes(_mm256_and_si256(va, vb)));
        }
        let mut total = hsum_u64(acc);
        for i in chunks * 4..n {
            total += (a[i] & b[i]).count_ones() as u64;
        }
        total as usize
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn and_not_count(a: &[u64], b: &[u64]) -> usize {
        let n = a.len().min(b.len());
        let chunks = n / 4;
        let mut acc = _mm256_setzero_si256();
        for i in 0..chunks {
            let va = _mm256_loadu_si256(a.as_ptr().add(i * 4) as *const __m256i);
            let vb = _mm256_loadu_si256(b.as_ptr().add(i * 4) as *const __m256i);
            // vpandn computes !first & second, so b comes first.
            acc = _mm256_add_epi64(acc, popcount_lanes(_mm256_andnot_si256(vb, va)));
        }
        let mut total = hsum_u64(acc);
        for i in chunks * 4..n {
            total += (a[i] & !b[i]).count_ones() as u64;
        }
        for &x in &a[n..] {
            total += x.count_ones() as u64;
        }
        total as usize
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn difference_is_empty(a: &[u64], b: &[u64]) -> bool {
        let n = a.len().min(b.len());
        let chunks = n / 4;
        for i in 0..chunks {
            let va = _mm256_loadu_si256(a.as_ptr().add(i * 4) as *const __m256i);
            let vb = _mm256_loadu_si256(b.as_ptr().add(i * 4) as *const __m256i);
            let d = _mm256_andnot_si256(vb, va);
            if _mm256_testz_si256(d, d) == 0 {
                return false;
            }
        }
        for i in chunks * 4..n {
            if a[i] & !b[i] != 0 {
                return false;
            }
        }
        a[n..].iter().all(|&x| x == 0)
    }

    #[target_feature(enable = "avx2")]
    pub unsafe fn gather_intersect_popcount(a: &[u64], b: &[u64], idx: &[u32]) -> usize {
        let chunks = idx.len() / 4;
        let mut acc = _mm256_setzero_si256();
        for c in 0..chunks {
            let i = c * 4;
            let vidx = _mm256_setr_epi64x(
                idx[i] as i64,
                idx[i + 1] as i64,
                idx[i + 2] as i64,
                idx[i + 3] as i64,
            );
            let va = _mm256_i64gather_epi64::<8>(a.as_ptr() as *const i64, vidx);
            let vb = _mm256_i64gather_epi64::<8>(b.as_ptr() as *const i64, vidx);
            acc = _mm256_add_epi64(acc, popcount_lanes(_mm256_and_si256(va, vb)));
        }
        let mut total = hsum_u64(acc);
        for &wi in &idx[chunks * 4..] {
            total += (a[wi as usize] & b[wi as usize]).count_ones() as u64;
        }
        total as usize
    }
}

/// Explicit 128-bit NEON kernels (`aarch64` only; NEON is a baseline
/// feature there, so no runtime probe is needed). Popcounts use
/// `vcntq_u8` + widening horizontal add; remainder words fall back to
/// scalar `count_ones`, matching the blocked-scalar twins bit for bit.
#[cfg(all(feature = "simd", target_arch = "aarch64"))]
mod neon {
    use core::arch::aarch64::*;

    pub fn intersect_popcount(a: &[u64], b: &[u64]) -> usize {
        let n = a.len().min(b.len());
        let chunks = n / 2;
        let mut total = 0u64;
        // SAFETY: NEON is baseline on aarch64; loads stay within `n`.
        unsafe {
            for i in 0..chunks {
                let va = vld1q_u64(a.as_ptr().add(i * 2));
                let vb = vld1q_u64(b.as_ptr().add(i * 2));
                let x = vandq_u64(va, vb);
                total += vaddlvq_u8(vcntq_u8(vreinterpretq_u8_u64(x))) as u64;
            }
        }
        for i in chunks * 2..n {
            total += (a[i] & b[i]).count_ones() as u64;
        }
        total as usize
    }

    pub fn and_not_count(a: &[u64], b: &[u64]) -> usize {
        let n = a.len().min(b.len());
        let chunks = n / 2;
        let mut total = 0u64;
        // SAFETY: NEON is baseline on aarch64; loads stay within `n`.
        unsafe {
            for i in 0..chunks {
                let va = vld1q_u64(a.as_ptr().add(i * 2));
                let vb = vld1q_u64(b.as_ptr().add(i * 2));
                // vbic computes first & !second.
                let x = vbicq_u64(va, vb);
                total += vaddlvq_u8(vcntq_u8(vreinterpretq_u8_u64(x))) as u64;
            }
        }
        for i in chunks * 2..n {
            total += (a[i] & !b[i]).count_ones() as u64;
        }
        for &x in &a[n..] {
            total += x.count_ones() as u64;
        }
        total as usize
    }

    pub fn difference_is_empty(a: &[u64], b: &[u64]) -> bool {
        let n = a.len().min(b.len());
        let chunks = n / 2;
        // SAFETY: NEON is baseline on aarch64; loads stay within `n`.
        unsafe {
            for i in 0..chunks {
                let va = vld1q_u64(a.as_ptr().add(i * 2));
                let vb = vld1q_u64(b.as_ptr().add(i * 2));
                let d = vbicq_u64(va, vb);
                if vmaxvq_u32(vreinterpretq_u32_u64(d)) != 0 {
                    return false;
                }
            }
        }
        for i in chunks * 2..n {
            if a[i] & !b[i] != 0 {
                return false;
            }
        }
        a[n..].iter().all(|&x| x == 0)
    }

    pub fn gather_intersect_popcount(a: &[u64], b: &[u64], idx: &[u32]) -> usize {
        let chunks = idx.len() / 2;
        let mut total = 0u64;
        // SAFETY: NEON is baseline on aarch64; gathered words are ANDed
        // in-register two at a time.
        unsafe {
            for c in 0..chunks {
                let (i0, i1) = (idx[c * 2] as usize, idx[c * 2 + 1] as usize);
                let ax = [a[i0], a[i1]];
                let bx = [b[i0], b[i1]];
                let x = vandq_u64(vld1q_u64(ax.as_ptr()), vld1q_u64(bx.as_ptr()));
                total += vaddlvq_u8(vcntq_u8(vreinterpretq_u8_u64(x))) as u64;
            }
        }
        for &wi in &idx[chunks * 2..] {
            total += (a[wi as usize] & b[wi as usize]).count_ones() as u64;
        }
        total as usize
    }
}

/// What one [`VertexBitset::active_words_into`] scan touched — the numbers
/// the engine folds into its modeled-cost counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ActiveScan {
    /// Data words examined (all words of every non-empty 8-word block).
    pub words_examined: usize,
    /// 8-word blocks skipped because their summary word was zero.
    pub blocks_skipped: usize,
}

/// A packed vertex set over a fixed universe `0..n`.
///
/// Alongside the data words the set maintains a **summary hierarchy**: one
/// summary word per [`SUMMARY_GROUP_WORDS`] data words, where bit `j` of
/// summary word `i` mirrors "data word `8·i + j` is nonzero". Kernels use
/// it to skip empty blocks in `O(1)`, which is what makes sparse candidate
/// sets cheap even over a wide universe.
///
/// Every public mutator keeps the set *canonical* — no bits at positions
/// `≥ n`, summary consistent with the data words — and the kernels
/// `debug_assert` [`VertexBitset::canonical`] instead of re-deriving
/// trailing-word masks at each call site.
///
/// ```
/// use scpm_graph::bitadj::VertexBitset;
///
/// let a = VertexBitset::from_sorted(130, &[0, 64, 128]);
/// let b = VertexBitset::from_sorted(130, &[64, 129]);
/// assert_eq!(a.count(), 3);
/// assert!(a.contains(64));
/// assert_eq!(a.intersect_count(&b), 1);
/// assert_eq!(a.iter().collect::<Vec<_>>(), vec![0, 64, 128]);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VertexBitset {
    n: usize,
    words: Vec<u64>,
    summary: Vec<u64>,
}

impl VertexBitset {
    /// The empty set over the universe `0..n`.
    pub fn empty(n: usize) -> Self {
        VertexBitset {
            n,
            words: vec![0; words_for(n)],
            summary: vec![0; summary_words_for(words_for(n))],
        }
    }

    /// Builds a set over `0..n` from a sorted, duplicate-free slice.
    pub fn from_sorted(n: usize, set: &[VertexId]) -> Self {
        let mut bits = Self::empty(n);
        for &v in set {
            bits.insert(v);
        }
        debug_assert!(bits.canonical());
        bits
    }

    /// Clears the set and re-sizes it for the universe `0..n`, keeping the
    /// word allocation.
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.words.clear();
        self.words.resize(words_for(n), 0);
        self.summary.clear();
        self.summary.resize(summary_words_for(words_for(n)), 0);
    }

    /// Size of the universe (`n`, *not* the member count).
    #[inline]
    pub fn universe(&self) -> usize {
        self.n
    }

    /// The packed words backing the set.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The summary words: bit `j` of `summary()[i]` mirrors
    /// "`words()[8·i + j]` is nonzero".
    #[inline]
    pub fn summary(&self) -> &[u64] {
        &self.summary
    }

    /// Number of storage words (`⌈n/64⌉`).
    #[inline]
    pub fn num_words(&self) -> usize {
        self.words.len()
    }

    /// Number of 8-word summary blocks (`⌈num_words/8⌉`).
    #[inline]
    pub fn num_blocks(&self) -> usize {
        self.summary.len()
    }

    /// Whether the set is canonical: the word count matches the universe,
    /// no bit is set at a position `≥ n` (the trailing-word invariant the
    /// fused kernels rely on), and every summary bit mirrors its data
    /// word. All public mutators preserve this; kernels `debug_assert` it.
    pub fn canonical(&self) -> bool {
        if self.words.len() != words_for(self.n) {
            return false;
        }
        if self.summary.len() != summary_words_for(self.words.len()) {
            return false;
        }
        if let Some(&last) = self.words.last() {
            if last & !tail_mask(self.n) != 0 {
                return false;
            }
        }
        self.summary.iter().enumerate().all(|(bi, &s)| {
            let start = bi * SUMMARY_GROUP_WORDS;
            let end = (start + SUMMARY_GROUP_WORDS).min(self.words.len());
            let expect = self.words[start..end]
                .iter()
                .enumerate()
                .fold(0u64, |acc, (j, &w)| acc | (((w != 0) as u64) << j));
            s == expect
        })
    }

    /// Inserts `v` (must be `< n`).
    #[inline]
    pub fn insert(&mut self, v: VertexId) {
        debug_assert!((v as usize) < self.n, "vertex {v} outside universe");
        let wi = v as usize / WORD_BITS;
        self.words[wi] |= 1u64 << (v as usize % WORD_BITS);
        self.summary[wi / SUMMARY_GROUP_WORDS] |= 1u64 << (wi % SUMMARY_GROUP_WORDS);
    }

    /// Inserts `v` (must be `< n`), appending `v`'s word index to
    /// `active` when the word transitions from zero to nonzero — packing
    /// a set this way yields its nonzero-word list (in first-touch order)
    /// as a free by-product, with no scan pass afterwards. The engine
    /// pairs it with [`VertexBitset::clear_active`] for `O(|set|)` pack /
    /// unpack cycles independent of the universe width.
    #[inline]
    pub fn insert_tracked(&mut self, v: VertexId, active: &mut Vec<u32>) {
        debug_assert!((v as usize) < self.n, "vertex {v} outside universe");
        let wi = v as usize / WORD_BITS;
        if self.words[wi] == 0 {
            active.push(wi as u32);
        }
        self.words[wi] |= 1u64 << (v as usize % WORD_BITS);
        self.summary[wi / SUMMARY_GROUP_WORDS] |= 1u64 << (wi % SUMMARY_GROUP_WORDS);
    }

    /// Zeroes every word listed in `active` (and its summary bit), then
    /// drains the list. With `active` covering all nonzero words — as
    /// produced by [`VertexBitset::insert_tracked`] or
    /// [`VertexBitset::active_words_into`] — this empties the set in
    /// `O(|active|)` instead of `O(⌈n/64⌉)`.
    pub fn clear_active(&mut self, active: &mut Vec<u32>) {
        for &wi in active.iter() {
            let wi = wi as usize;
            self.words[wi] = 0;
            self.summary[wi / SUMMARY_GROUP_WORDS] &= !(1u64 << (wi % SUMMARY_GROUP_WORDS));
        }
        active.clear();
        debug_assert!(self.is_empty());
    }

    /// Removes `v` (must be `< n`).
    #[inline]
    pub fn remove(&mut self, v: VertexId) {
        debug_assert!((v as usize) < self.n, "vertex {v} outside universe");
        let wi = v as usize / WORD_BITS;
        self.words[wi] &= !(1u64 << (v as usize % WORD_BITS));
        if self.words[wi] == 0 {
            self.summary[wi / SUMMARY_GROUP_WORDS] &= !(1u64 << (wi % SUMMARY_GROUP_WORDS));
        }
    }

    /// Membership test, `O(1)`.
    #[inline]
    pub fn contains(&self, v: VertexId) -> bool {
        self.words[v as usize / WORD_BITS] & (1u64 << (v as usize % WORD_BITS)) != 0
    }

    /// Member count (popcount over all words).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty (`O(num_blocks)` via the summary).
    pub fn is_empty(&self) -> bool {
        self.summary.iter().all(|&s| s == 0)
    }

    /// Appends the indices of all nonzero data words to `out` (cleared
    /// first), skipping empty 8-word blocks via the summary. Returns what
    /// the scan touched so callers can model its cost.
    ///
    /// The resulting list is what [`gather_intersect_popcount`] consumes:
    /// a kernel restricted to these indices sees every member word of the
    /// set while touching none of the empty ones.
    pub fn active_words_into(&self, out: &mut Vec<u32>) -> ActiveScan {
        debug_assert!(self.canonical());
        out.clear();
        let mut scan = ActiveScan::default();
        for (bi, &s) in self.summary.iter().enumerate() {
            if s == 0 {
                scan.blocks_skipped += 1;
                continue;
            }
            let start = bi * SUMMARY_GROUP_WORDS;
            let end = (start + SUMMARY_GROUP_WORDS).min(self.words.len());
            scan.words_examined += end - start;
            for wi in start..end {
                if self.words[wi] != 0 {
                    out.push(wi as u32);
                }
            }
        }
        scan
    }

    /// `|self ∩ other|` without materializing the intersection (fused
    /// blocked kernel).
    #[inline]
    pub fn intersect_count(&self, other: &VertexBitset) -> usize {
        debug_assert!(self.canonical() && other.canonical());
        intersect_popcount(&self.words, &other.words)
    }

    /// `|self ∩ words|` against a raw packed row (e.g. a
    /// [`BitAdjacency`] row), skipping the set's empty 8-word blocks via
    /// the summary.
    #[inline]
    pub fn intersect_count_words(&self, words: &[u64]) -> usize {
        self.intersect_count_words_with(KernelBackend::Scalar, words)
    }

    /// [`VertexBitset::intersect_count_words`] through an explicit kernel
    /// backend — the same block-skipping walk, with the per-block popcount
    /// dispatched via [`intersect_popcount_with`].
    #[inline]
    pub fn intersect_count_words_with(&self, backend: KernelBackend, words: &[u64]) -> usize {
        debug_assert!(self.canonical());
        let mut total = 0usize;
        for (bi, &s) in self.summary.iter().enumerate() {
            if s == 0 {
                continue;
            }
            let start = bi * SUMMARY_GROUP_WORDS;
            let end = (start + SUMMARY_GROUP_WORDS).min(self.words.len());
            total += intersect_popcount_with(backend, &self.words[start..end], &words[start..end]);
        }
        total
    }

    /// In-place intersection `self &= other`.
    pub fn intersect_with(&mut self, other: &VertexBitset) {
        for (w, &o) in self.words.iter_mut().zip(other.words.iter()) {
            *w &= o;
        }
        self.rebuild_summary();
    }

    /// In-place difference `self &= !other`.
    pub fn difference_with(&mut self, other: &VertexBitset) {
        for (w, &o) in self.words.iter_mut().zip(other.words.iter()) {
            *w &= !o;
        }
        self.rebuild_summary();
    }

    /// Whether `self ⊆ other` (fused blocked [`difference_is_empty`] with
    /// per-block early exit).
    pub fn is_subset_of(&self, other: &VertexBitset) -> bool {
        self.is_subset_of_with(KernelBackend::Scalar, other)
    }

    /// [`VertexBitset::is_subset_of`] through an explicit kernel backend.
    pub fn is_subset_of_with(&self, backend: KernelBackend, other: &VertexBitset) -> bool {
        debug_assert!(self.canonical() && other.canonical());
        difference_is_empty_with(backend, &self.words, &other.words)
    }

    /// Recomputes the summary hierarchy from the data words (used after
    /// bulk word mutations).
    fn rebuild_summary(&mut self) {
        for (bi, s) in self.summary.iter_mut().enumerate() {
            let start = bi * SUMMARY_GROUP_WORDS;
            let end = (start + SUMMARY_GROUP_WORDS).min(self.words.len());
            *s = self.words[start..end]
                .iter()
                .enumerate()
                .fold(0u64, |acc, (j, &w)| acc | (((w != 0) as u64) << j));
        }
    }

    /// Iterates the members in ascending order, using the summary
    /// hierarchy to jump straight from nonzero word to nonzero word —
    /// `O(members + blocks)` instead of `O(⌈n/64⌉)`, which is what keeps
    /// sparse keep-sets cheap to walk in the subgraph projection path.
    pub fn iter(&self) -> SetBits<'_> {
        debug_assert!(self.canonical());
        SetBits {
            words: &self.words,
            summary: &self.summary,
            block: 0,
            block_bits: self.summary.first().copied().unwrap_or(0),
            word_base: 0,
            current: 0,
        }
    }

    /// The members as a sorted `Vec`.
    pub fn to_vec(&self) -> Vec<VertexId> {
        self.iter().collect()
    }
}

/// Ascending iterator over the set bits of a [`VertexBitset`], walking
/// summary words first so empty 8-word blocks and empty words inside a
/// block are never touched.
pub struct SetBits<'a> {
    words: &'a [u64],
    summary: &'a [u64],
    /// Index of the summary word `block_bits` came from.
    block: usize,
    /// Unconsumed bits of the current summary word (each names a nonzero
    /// data word of the block).
    block_bits: u64,
    /// Word index of the data word `current` came from.
    word_base: usize,
    /// Unconsumed bits of the current data word.
    current: u64,
}

impl Iterator for SetBits<'_> {
    type Item = VertexId;

    fn next(&mut self) -> Option<VertexId> {
        while self.current == 0 {
            while self.block_bits == 0 {
                self.block += 1;
                if self.block >= self.summary.len() {
                    return None;
                }
                self.block_bits = self.summary[self.block];
            }
            let j = self.block_bits.trailing_zeros() as usize;
            self.block_bits &= self.block_bits - 1;
            self.word_base = self.block * SUMMARY_GROUP_WORDS + j;
            self.current = self.words[self.word_base];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some((self.word_base * WORD_BITS + bit) as VertexId)
    }
}

/// A dense packed adjacency matrix for a (small) graph.
///
/// One row of `⌈n/64⌉` words per vertex; symmetric since the graphs are
/// undirected. Intended for *induced subgraphs* after vertex reduction —
/// the engine caps the vertex count it will pack (see
/// [`scpm_quasiclique`-level docs]) and falls back to slice scans beyond
/// it, because the matrix is `n²` bits.
///
/// ```
/// use scpm_graph::bitadj::BitAdjacency;
/// use scpm_graph::builder::graph_from_edges;
///
/// let g = graph_from_edges(4, [(0, 1), (1, 2), (2, 3)]);
/// let adj = BitAdjacency::from_csr(&g);
/// assert!(adj.has_edge(1, 2));
/// assert!(!adj.has_edge(0, 3));
/// assert_eq!(adj.degree(1), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct BitAdjacency {
    n: usize,
    stride: usize,
    bits: Vec<u64>,
    /// CSR offsets into `row_active`: row `v`'s nonzero word indices live
    /// at `row_active[row_active_offsets[v]..row_active_offsets[v + 1]]`.
    row_active_offsets: Vec<u32>,
    /// Concatenated nonzero-word index lists, one per row. A row of a
    /// sparse graph touches `≤ min(deg, stride)` words, so kernels
    /// gathering over the shorter of this list and a set's active list
    /// pay the sparse side, never the full stride.
    row_active: Vec<u32>,
}

impl BitAdjacency {
    /// An empty 0-vertex matrix; populate with [`BitAdjacency::rebuild`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Packs the adjacency of `g`.
    pub fn from_csr(g: &CsrGraph) -> Self {
        let mut adj = Self::new();
        adj.rebuild(g);
        adj
    }

    /// Re-packs the matrix for `g`, reusing the word allocation. Also
    /// rebuilds the per-row active-word lists (rows are immutable for the
    /// lifetime of one packing, so the lists are computed exactly once
    /// per search).
    pub fn rebuild(&mut self, g: &CsrGraph) {
        let n = g.num_vertices();
        self.n = n;
        self.stride = words_for(n);
        self.bits.clear();
        self.bits.resize(n * self.stride, 0);
        self.row_active_offsets.clear();
        self.row_active_offsets.push(0);
        self.row_active.clear();
        for u in 0..n as VertexId {
            let base = u as usize * self.stride;
            let row = &mut self.bits[base..base + self.stride];
            for &v in g.neighbors(u) {
                row[v as usize / WORD_BITS] |= 1u64 << (v as usize % WORD_BITS);
            }
            for (wi, &w) in row.iter().enumerate() {
                if w != 0 {
                    self.row_active.push(wi as u32);
                }
            }
            self.row_active_offsets.push(self.row_active.len() as u32);
        }
    }

    /// Drops the packed contents (keeps the allocation for later reuse).
    pub fn clear(&mut self) {
        self.n = 0;
        self.stride = 0;
        self.bits.clear();
        self.row_active_offsets.clear();
        self.row_active.clear();
    }

    /// Number of vertices the matrix covers.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Words per row (`⌈n/64⌉`).
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// The packed neighbor row of `v`.
    #[inline]
    pub fn row(&self, v: VertexId) -> &[u64] {
        let base = v as usize * self.stride;
        &self.bits[base..base + self.stride]
    }

    /// The indices of the nonzero words of row `v` (ascending, at most
    /// `min(deg(v), stride)` entries) — the sparse-side gather list for
    /// [`gather_intersect_popcount`].
    #[inline]
    pub fn row_active(&self, v: VertexId) -> &[u32] {
        let (s, e) = (
            self.row_active_offsets[v as usize] as usize,
            self.row_active_offsets[v as usize + 1] as usize,
        );
        &self.row_active[s..e]
    }

    /// `O(1)` edge test.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.bits[u as usize * self.stride + v as usize / WORD_BITS]
            & (1u64 << (v as usize % WORD_BITS))
            != 0
    }

    /// Degree of `v` via row popcount.
    pub fn degree(&self, v: VertexId) -> usize {
        self.row(v).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `|N(v) ∩ set|` — the popcount kernel behind exdeg/indeg updates
    /// (block-skipping via `set`'s summary).
    #[inline]
    pub fn degree_within(&self, v: VertexId, set: &VertexBitset) -> usize {
        set.intersect_count_words(self.row(v))
    }

    /// [`BitAdjacency::degree_within`] through an explicit kernel backend.
    #[inline]
    pub fn degree_within_with(
        &self,
        backend: KernelBackend,
        v: VertexId,
        set: &VertexBitset,
    ) -> usize {
        set.intersect_count_words_with(backend, self.row(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn bitset_basics_across_word_boundaries() {
        let mut b = VertexBitset::empty(130);
        for v in [0u32, 63, 64, 127, 128, 129] {
            b.insert(v);
        }
        assert_eq!(b.count(), 6);
        assert!(b.contains(63) && b.contains(64) && b.contains(129));
        assert!(!b.contains(1));
        b.remove(64);
        assert!(!b.contains(64));
        assert_eq!(b.to_vec(), vec![0, 63, 127, 128, 129]);
        assert_eq!(b.num_words(), 3);
        assert!(b.canonical());
    }

    #[test]
    fn bitset_kernels() {
        let a = VertexBitset::from_sorted(200, &[1, 5, 70, 130, 199]);
        let b = VertexBitset::from_sorted(200, &[5, 70, 131]);
        assert_eq!(a.intersect_count(&b), 2);
        let mut c = a.clone();
        c.intersect_with(&b);
        assert_eq!(c.to_vec(), vec![5, 70]);
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.to_vec(), vec![1, 130, 199]);
        assert!(c.is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
        assert!(VertexBitset::empty(200).is_subset_of(&b));
        assert!(VertexBitset::empty(200).is_empty());
        assert!(c.canonical() && d.canonical());
    }

    #[test]
    fn bitset_reset_reuses_allocation() {
        let mut b = VertexBitset::from_sorted(100, &[1, 2, 3]);
        b.reset(65);
        assert_eq!(b.universe(), 65);
        assert_eq!(b.count(), 0);
        b.insert(64);
        assert_eq!(b.to_vec(), vec![64]);
        assert!(b.canonical());
    }

    #[test]
    fn fused_kernels_match_composed_primitives() {
        let a = VertexBitset::from_sorted(600, &[0, 5, 64, 300, 511, 599]);
        let b = VertexBitset::from_sorted(600, &[5, 64, 65, 511]);
        // intersect_popcount == intersect then count.
        let mut inter = a.clone();
        inter.intersect_with(&b);
        assert_eq!(intersect_popcount(a.words(), b.words()), inter.count());
        // and_not_count == difference then count.
        let mut diff = a.clone();
        diff.difference_with(&b);
        assert_eq!(and_not_count(a.words(), b.words()), diff.count());
        // difference_is_empty == (and_not_count == 0).
        assert!(!difference_is_empty(a.words(), b.words()));
        assert!(difference_is_empty(inter.words(), a.words()));
        // Gather over b's active words equals the dense intersect count.
        let mut active = Vec::new();
        b.active_words_into(&mut active);
        assert_eq!(
            gather_intersect_popcount(a.words(), b.words(), &active),
            inter.count()
        );
    }

    #[test]
    fn fused_kernels_handle_unequal_lengths() {
        // a longer than b: the tail belongs to the difference.
        let a = [0b1011u64, 0, u64::MAX];
        let b = [0b0011u64];
        assert_eq!(intersect_popcount(&a, &b), 2);
        assert_eq!(and_not_count(&a, &b), 1 + 64);
        assert!(!difference_is_empty(&a, &b));
        let zero_tail = [0b0011u64, 0, 0];
        assert!(difference_is_empty(&zero_tail, &b));
        assert!(difference_is_empty(&[], &b));
    }

    #[test]
    fn summary_tracks_mutations() {
        let mut b = VertexBitset::empty(1024); // 16 words, 2 summary blocks
        assert_eq!(b.num_blocks(), 2);
        assert!(b.is_empty());
        b.insert(700); // word 10 → block 1
        assert_eq!(b.summary()[0], 0);
        assert_ne!(b.summary()[1], 0);
        let mut active = Vec::new();
        let scan = b.active_words_into(&mut active);
        assert_eq!(active, vec![10]);
        assert_eq!(scan.blocks_skipped, 1);
        assert_eq!(scan.words_examined, 8);
        b.remove(700);
        assert!(b.is_empty());
        assert!(b.canonical());
        let scan = b.active_words_into(&mut active);
        assert!(active.is_empty());
        assert_eq!(scan.blocks_skipped, 2);
    }

    #[test]
    fn tail_mask_values() {
        assert_eq!(tail_mask(64), u64::MAX);
        assert_eq!(tail_mask(0), u64::MAX);
        assert_eq!(tail_mask(1), 1);
        assert_eq!(tail_mask(65), 1);
        assert_eq!(tail_mask(130), 0b11);
    }

    #[test]
    fn adjacency_matches_csr() {
        let g = graph_from_edges(70, [(0, 1), (0, 69), (1, 69), (5, 64), (64, 69)]);
        let adj = BitAdjacency::from_csr(&g);
        assert_eq!(adj.num_vertices(), 70);
        for u in 0..70u32 {
            assert_eq!(adj.degree(u), g.degree(u), "degree of {u}");
            for v in 0..70u32 {
                assert_eq!(adj.has_edge(u, v), g.has_edge(u, v), "edge {u}-{v}");
            }
        }
        let set = VertexBitset::from_sorted(70, &[1, 5, 69]);
        assert_eq!(adj.degree_within(0, &set), 2);
        assert_eq!(adj.degree_within(64, &set), 2);
    }

    #[test]
    fn rebuild_resizes() {
        let g1 = graph_from_edges(3, [(0, 1)]);
        let g2 = graph_from_edges(80, [(0, 79)]);
        let mut adj = BitAdjacency::from_csr(&g1);
        adj.rebuild(&g2);
        assert_eq!(adj.num_vertices(), 80);
        assert_eq!(adj.stride(), 2);
        assert!(adj.has_edge(79, 0));
        assert!(!adj.has_edge(0, 1));
        adj.clear();
        assert_eq!(adj.num_vertices(), 0);
    }

    #[test]
    fn empty_universe() {
        let b = VertexBitset::empty(0);
        assert_eq!(b.count(), 0);
        assert_eq!(b.iter().count(), 0);
        assert!(b.canonical());
        let adj = BitAdjacency::from_csr(&CsrGraph::empty(0));
        assert_eq!(adj.num_vertices(), 0);
    }
}
