//! The running example of the paper (Figure 1): an 11-vertex attributed
//! graph whose pattern set under (σmin=3, γmin=0.6, min_size=4, εmin=0.5)
//! is exactly Table 1.
//!
//! The paper draws the graph but does not list its edges; this module
//! contains a reconstruction that satisfies every constraint stated in the
//! text (see DESIGN.md):
//!
//! * `{3,4,5,6}` is a clique (the 1-quasi-clique of Figure 1(c)),
//! * `{6,...,11}` is a 0.6-quasi-clique of size 6 (Figure 1(d)),
//! * `K_{A} = {3,...,11}` so `ε({A}) = 9/11 ≈ 0.82`,
//! * `ε({C}) = 0` and `ε({A,B}) = 1`,
//! * the maximal γ=0.6 quasi-cliques of size ≥ 4 induced by `{A}` are the
//!   seven rows of Table 1.

use crate::attributed::{AttributedGraph, AttributedGraphBuilder};
use crate::csr::VertexId;

/// Paper vertex labels are 1-based; this crate's ids are 0-based.
/// `paper_vertex(v)` converts a paper label to a [`VertexId`].
pub fn paper_vertex(label: u32) -> VertexId {
    assert!((1..=11).contains(&label), "Figure 1 has vertices 1..=11");
    label - 1
}

/// Converts a 0-based id back to the paper's 1-based label.
pub fn paper_label(v: VertexId) -> u32 {
    v + 1
}

/// Edges of Figure 1(b), in the paper's 1-based labels.
pub const FIGURE1_EDGES: [(u32, u32); 19] = [
    (1, 2),
    (1, 3),
    (2, 3),
    (3, 4),
    (3, 5),
    (3, 6),
    (3, 7),
    (4, 5),
    (4, 6),
    (5, 6),
    (6, 7),
    (6, 8),
    (6, 9),
    (7, 8),
    (7, 10),
    (8, 11),
    (9, 10),
    (9, 11),
    (10, 11),
];

/// Attribute table of Figure 1(a), in the paper's 1-based labels.
pub const FIGURE1_ATTRS: [(u32, &[&str]); 11] = [
    (1, &["A", "C"]),
    (2, &["A"]),
    (3, &["A", "C", "D"]),
    (4, &["A", "D"]),
    (5, &["A", "E"]),
    (6, &["A", "B", "C"]),
    (7, &["A", "B", "E"]),
    (8, &["A", "B"]),
    (9, &["A", "B"]),
    (10, &["A", "B", "D"]),
    (11, &["A", "B"]),
];

/// Builds the Figure 1 attributed graph.
pub fn figure1() -> AttributedGraph {
    let mut b = AttributedGraphBuilder::new(11);
    for &(u, v) in &FIGURE1_EDGES {
        b.add_edge(paper_vertex(u), paper_vertex(v));
    }
    for &(v, names) in &FIGURE1_ATTRS {
        for name in names {
            b.add_attr_named(paper_vertex(v), name);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_match_paper() {
        let g = figure1();
        assert_eq!(g.num_vertices(), 11);
        assert_eq!(g.num_edges(), 19);
        assert_eq!(g.num_attributes(), 5); // A..E
    }

    #[test]
    fn supports_match_paper() {
        let g = figure1();
        let a = g.attr_id("A").unwrap();
        let b = g.attr_id("B").unwrap();
        let c = g.attr_id("C").unwrap();
        assert_eq!(g.support(a), 11);
        assert_eq!(g.support(b), 6);
        assert_eq!(g.support(c), 3);
        // σ({A,B}) = 6 per Table 1.
        assert_eq!(g.vertices_with_all(&[a, b]).len(), 6);
    }

    #[test]
    fn clique_3456_present() {
        let g = figure1();
        let ids: Vec<VertexId> = [3, 4, 5, 6].iter().map(|&l| paper_vertex(l)).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(
                    g.graph().has_edge(ids[i], ids[j]),
                    "expected clique edge {}-{}",
                    paper_label(ids[i]),
                    paper_label(ids[j])
                );
            }
        }
    }

    #[test]
    fn subgraph_6_to_11_has_min_degree_3() {
        let g = figure1();
        let set: Vec<VertexId> = (6..=11).map(paper_vertex).collect();
        for &v in &set {
            let d = g.graph().degree_within(v, &set);
            assert!(d >= 3, "vertex {} has degree {d} < 3", paper_label(v));
        }
    }

    #[test]
    fn b_vertices_are_6_to_11() {
        let g = figure1();
        let b = g.attr_id("B").unwrap();
        let expect: Vec<VertexId> = (6..=11).map(paper_vertex).collect();
        assert_eq!(g.vertices_with(b), expect.as_slice());
    }

    #[test]
    fn paper_vertex_roundtrip() {
        for label in 1..=11 {
            assert_eq!(paper_label(paper_vertex(label)), label);
        }
    }

    #[test]
    #[should_panic(expected = "vertices 1..=11")]
    fn paper_vertex_rejects_zero() {
        paper_vertex(0);
    }
}
