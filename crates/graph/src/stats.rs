//! One-stop graph summaries for the CLI `stats` subcommand and dataset
//! calibration: size, degree profile, connectivity, cores, clustering.

use crate::attributed::AttributedGraph;
use crate::cluster::clustering;
use crate::components::Components;
use crate::csr::CsrGraph;
use crate::degree::DegreeDistribution;
use crate::kcore::CoreDecomposition;
use crate::traversal::diameter_lower_bound;

/// Aggregate statistics of a graph (plus attribute counts when derived
/// from an [`AttributedGraph`]).
#[derive(Clone, Debug, PartialEq)]
pub struct GraphSummary {
    /// Vertex count.
    pub vertices: usize,
    /// Undirected edge count.
    pub edges: usize,
    /// Mean degree `2m/n`.
    pub mean_degree: f64,
    /// Maximum degree.
    pub max_degree: usize,
    /// Connected components.
    pub components: usize,
    /// Vertices in the largest component.
    pub largest_component: usize,
    /// Degeneracy (maximum core number).
    pub degeneracy: u32,
    /// Global clustering coefficient (transitivity).
    pub transitivity: f64,
    /// Mean local clustering over vertices of degree ≥ 2.
    pub average_clustering: f64,
    /// Total triangles.
    pub triangles: u64,
    /// Double-sweep diameter lower bound from vertex 0 (0 for empty).
    pub diameter_lb: u32,
    /// Distinct attributes (0 when built from a bare topology).
    pub attributes: usize,
    /// Mean attributes per vertex (0 when built from a bare topology).
    pub mean_attrs_per_vertex: f64,
}

impl GraphSummary {
    /// Summarizes a bare topology.
    pub fn of_graph(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let dist = DegreeDistribution::from_graph(g);
        let comp = Components::of(g);
        let cores = CoreDecomposition::of(g);
        let clust = clustering(g);
        GraphSummary {
            vertices: n,
            edges: g.num_edges(),
            mean_degree: dist.mean(),
            max_degree: dist.max_degree(),
            components: comp.count,
            largest_component: comp.sizes().into_iter().max().unwrap_or(0),
            degeneracy: cores.degeneracy,
            transitivity: clust.transitivity,
            average_clustering: clust.average_local,
            triangles: clust.total_triangles,
            diameter_lb: if n == 0 {
                0
            } else {
                diameter_lower_bound(g, 0)
            },
            attributes: 0,
            mean_attrs_per_vertex: 0.0,
        }
    }

    /// Summarizes an attributed graph (topology plus attribute profile).
    pub fn of_attributed(g: &AttributedGraph) -> Self {
        let mut s = Self::of_graph(g.graph());
        s.attributes = g.num_attributes();
        let pairs: usize = g.graph().vertices().map(|v| g.attributes_of(v).len()).sum();
        s.mean_attrs_per_vertex = if s.vertices == 0 {
            0.0
        } else {
            pairs as f64 / s.vertices as f64
        };
        s
    }
}

impl std::fmt::Display for GraphSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "vertices            {}", self.vertices)?;
        writeln!(f, "edges               {}", self.edges)?;
        writeln!(f, "mean degree         {:.3}", self.mean_degree)?;
        writeln!(f, "max degree          {}", self.max_degree)?;
        writeln!(f, "components          {}", self.components)?;
        writeln!(f, "largest component   {}", self.largest_component)?;
        writeln!(f, "degeneracy          {}", self.degeneracy)?;
        writeln!(f, "transitivity        {:.4}", self.transitivity)?;
        writeln!(f, "avg clustering      {:.4}", self.average_clustering)?;
        writeln!(f, "triangles           {}", self.triangles)?;
        writeln!(f, "diameter (lb)       {}", self.diameter_lb)?;
        if self.attributes > 0 {
            writeln!(f, "attributes          {}", self.attributes)?;
            writeln!(f, "mean attrs/vertex   {:.3}", self.mean_attrs_per_vertex)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::figure1::figure1;

    #[test]
    fn summary_of_triangle_with_tail() {
        let g = graph_from_edges(5, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]);
        let s = GraphSummary::of_graph(&g);
        assert_eq!(s.vertices, 5);
        assert_eq!(s.edges, 5);
        assert_eq!(s.components, 1);
        assert_eq!(s.largest_component, 5);
        assert_eq!(s.degeneracy, 2);
        assert_eq!(s.triangles, 1);
        assert_eq!(s.diameter_lb, 3);
        assert_eq!(s.attributes, 0);
    }

    #[test]
    fn summary_of_figure1() {
        let g = figure1();
        let s = GraphSummary::of_attributed(&g);
        assert_eq!(s.vertices, 11);
        assert_eq!(s.edges, 19);
        assert_eq!(s.attributes, 5);
        // 25 vertex-attribute pairs in Figure 1(a).
        assert!((s.mean_attrs_per_vertex - 25.0 / 11.0).abs() < 1e-12);
        assert_eq!(s.components, 1);
        let text = s.to_string();
        assert!(text.contains("vertices            11"));
        assert!(text.contains("attributes          5"));
    }

    #[test]
    fn summary_of_empty() {
        let s = GraphSummary::of_graph(&CsrGraph::empty(0));
        assert_eq!(s.vertices, 0);
        assert_eq!(s.diameter_lb, 0);
        assert_eq!(s.mean_degree, 0.0);
    }
}
