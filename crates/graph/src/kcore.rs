//! k-core decomposition (Batagelj–Zaveršnik bucket peeling, `O(n + m)`).
//!
//! The core number of a vertex is the largest `k` such that the vertex
//! belongs to a subgraph where every vertex has degree ≥ `k`. The
//! quasi-clique vertex reduction of §3.2.2 is exactly a single `z`-core
//! peel; the full decomposition exposes the whole hierarchy, which the
//! graph-stats CLI reports and the datasets use for calibration (a planted
//! community of size `s` and density `p_in` shows up as an
//! `≈ p_in·(s−1)`-core).

use crate::csr::{CsrGraph, VertexId};

/// Core numbers of every vertex plus the decomposition order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoreDecomposition {
    /// `core[v]` = core number of vertex `v`.
    pub core: Vec<u32>,
    /// The degeneracy: the maximum core number (0 for an empty graph).
    pub degeneracy: u32,
}

impl CoreDecomposition {
    /// Computes core numbers by peeling minimum-degree vertices with
    /// bucketed counting sort.
    pub fn of(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        if n == 0 {
            return CoreDecomposition {
                core: Vec::new(),
                degeneracy: 0,
            };
        }
        let max_deg = g.max_degree();
        let mut degree: Vec<usize> = (0..n as VertexId).map(|v| g.degree(v)).collect();

        // Counting sort of vertices by degree.
        let mut bin = vec![0usize; max_deg + 2];
        for &d in &degree {
            bin[d] += 1;
        }
        let mut start = 0usize;
        for b in bin.iter_mut() {
            let count = *b;
            *b = start;
            start += count;
        }
        // vert: vertices in degree order; pos: index of each vertex in vert.
        let mut vert = vec![0 as VertexId; n];
        let mut pos = vec![0usize; n];
        {
            let mut next = bin.clone();
            for v in 0..n {
                let d = degree[v];
                pos[v] = next[d];
                vert[next[d]] = v as VertexId;
                next[d] += 1;
            }
        }

        let mut core = vec![0u32; n];
        for i in 0..n {
            let v = vert[i];
            core[v as usize] = degree[v as usize] as u32;
            for &u in g.neighbors(v) {
                let du = degree[u as usize];
                if du > degree[v as usize] {
                    // Move u to the front of its bucket, then shrink its
                    // degree by one.
                    let pu = pos[u as usize];
                    let pw = bin[du];
                    let w = vert[pw];
                    if u != w {
                        vert.swap(pu, pw);
                        pos[u as usize] = pw;
                        pos[w as usize] = pu;
                    }
                    bin[du] += 1;
                    degree[u as usize] -= 1;
                }
            }
        }
        let degeneracy = core.iter().copied().max().unwrap_or(0);
        CoreDecomposition { core, degeneracy }
    }

    /// Sorted vertices of the `k`-core (possibly empty).
    pub fn k_core(&self, k: u32) -> Vec<VertexId> {
        self.core
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c >= k)
            .map(|(v, _)| v as VertexId)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;
    use crate::csr::CsrGraph;

    /// Reference implementation: repeatedly peel vertices with degree < k
    /// and check membership.
    fn kcore_naive(g: &CsrGraph, k: usize) -> Vec<VertexId> {
        let mut alive: Vec<bool> = vec![true; g.num_vertices()];
        loop {
            let mut changed = false;
            for v in g.vertices() {
                if alive[v as usize] {
                    let d = g
                        .neighbors(v)
                        .iter()
                        .filter(|&&u| alive[u as usize])
                        .count();
                    if d < k {
                        alive[v as usize] = false;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        (0..g.num_vertices() as VertexId)
            .filter(|&v| alive[v as usize])
            .collect()
    }

    #[test]
    fn triangle_with_tail() {
        // Triangle 0-1-2 with path 2-3-4.
        let g = graph_from_edges(5, [(0, 1), (0, 2), (1, 2), (2, 3), (3, 4)]);
        let d = CoreDecomposition::of(&g);
        assert_eq!(d.core, vec![2, 2, 2, 1, 1]);
        assert_eq!(d.degeneracy, 2);
        assert_eq!(d.k_core(2), vec![0, 1, 2]);
        assert_eq!(d.k_core(1), vec![0, 1, 2, 3, 4]);
        assert!(d.k_core(3).is_empty());
    }

    #[test]
    fn clique_core_numbers() {
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in (u + 1)..5 {
                edges.push((u, v));
            }
        }
        let g = graph_from_edges(5, edges);
        let d = CoreDecomposition::of(&g);
        assert!(d.core.iter().all(|&c| c == 4));
        assert_eq!(d.degeneracy, 4);
    }

    #[test]
    fn matches_naive_peeling_on_random_graphs() {
        for seed in 0..5u64 {
            let g = crate::generators::erdos_renyi::gnm(40, 90, seed);
            let d = CoreDecomposition::of(&g);
            for k in 0..=d.degeneracy + 1 {
                assert_eq!(
                    d.k_core(k),
                    kcore_naive(&g, k as usize),
                    "seed {seed} k {k}"
                );
            }
        }
    }

    #[test]
    fn core_matches_reduce_vertices_threshold() {
        // The quasi-clique vertex reduction with threshold z keeps exactly
        // the z-core.
        let g = crate::generators::erdos_renyi::gnm(50, 120, 3);
        let d = CoreDecomposition::of(&g);
        for z in 1..=3u32 {
            let core = d.k_core(z);
            let peeled = kcore_naive(&g, z as usize);
            assert_eq!(core, peeled);
        }
    }

    #[test]
    fn empty_and_isolated() {
        let d = CoreDecomposition::of(&CsrGraph::empty(0));
        assert_eq!(d.degeneracy, 0);
        let d = CoreDecomposition::of(&CsrGraph::empty(3));
        assert_eq!(d.core, vec![0, 0, 0]);
        assert_eq!(d.k_core(0), vec![0, 1, 2]);
        assert!(d.k_core(1).is_empty());
    }
}
