//! Text I/O for attributed graphs.
//!
//! Two families of formats live here (both specified normatively in
//! `docs/DATASETS.md`):
//!
//! * the **unified** format of this module — a single line-oriented file
//!   mirroring the public releases of the paper's datasets (an edge file
//!   plus a vertex-attribute file), merged for convenience:
//!
//!   ```text
//!   # comments and blank lines are ignored
//!   v <n>              # vertex count (required, first directive)
//!   e <u> <v>          # undirected edge, 0-based ids
//!   a <v> <name...>    # whitespace-separated attribute names for vertex v
//!   ```
//!
//! * the **interchange** shapes of [`source`] — split edge-list /
//!   adjacency-list / vertex-attribute-table files with arbitrary vertex
//!   tokens, as real datasets actually ship. Those parse into a
//!   [`source::RawSource`] that `scpm_datasets::ingest` normalizes.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::attributed::{AttributedGraph, AttributedGraphBuilder};

pub mod source;

pub use source::{
    write_adjacency, write_attr_table, write_edge_list, Interner, RawSource, StreamingSource,
};

/// Errors produced while parsing the text format.
#[derive(Debug)]
pub enum ParseError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Malformed content with a line number and message.
    Syntax {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Human-readable description of the problem.
        message: String,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::Io(e) => write!(f, "i/o error: {e}"),
            ParseError::Syntax { line, message } => {
                write!(f, "parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for ParseError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseError::Io(e) => Some(e),
            ParseError::Syntax { .. } => None,
        }
    }
}

impl From<std::io::Error> for ParseError {
    fn from(e: std::io::Error) -> Self {
        ParseError::Io(e)
    }
}

pub(crate) fn syntax(line: usize, message: impl Into<String>) -> ParseError {
    ParseError::Syntax {
        line,
        message: message.into(),
    }
}

/// Reads an attributed graph from any reader in the text format.
pub fn read_attributed<R: Read>(reader: R) -> Result<AttributedGraph, ParseError> {
    let reader = BufReader::new(reader);
    let mut builder: Option<AttributedGraphBuilder> = None;
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().unwrap();
        match tag {
            "v" => {
                if builder.is_some() {
                    return Err(syntax(lineno, "duplicate `v` directive"));
                }
                let n: usize = parts
                    .next()
                    .ok_or_else(|| syntax(lineno, "`v` needs a count"))?
                    .parse()
                    .map_err(|_| syntax(lineno, "invalid vertex count"))?;
                builder = Some(AttributedGraphBuilder::new(n));
            }
            "e" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| syntax(lineno, "`e` before `v`"))?;
                let u: u32 = parts
                    .next()
                    .ok_or_else(|| syntax(lineno, "`e` needs two endpoints"))?
                    .parse()
                    .map_err(|_| syntax(lineno, "invalid endpoint"))?;
                let v: u32 = parts
                    .next()
                    .ok_or_else(|| syntax(lineno, "`e` needs two endpoints"))?
                    .parse()
                    .map_err(|_| syntax(lineno, "invalid endpoint"))?;
                if u as usize >= b.num_vertices() || v as usize >= b.num_vertices() {
                    return Err(syntax(lineno, format!("edge ({u}, {v}) out of range")));
                }
                b.add_edge(u, v);
            }
            "a" => {
                let b = builder
                    .as_mut()
                    .ok_or_else(|| syntax(lineno, "`a` before `v`"))?;
                let v: u32 = parts
                    .next()
                    .ok_or_else(|| syntax(lineno, "`a` needs a vertex"))?
                    .parse()
                    .map_err(|_| syntax(lineno, "invalid vertex"))?;
                if v as usize >= b.num_vertices() {
                    return Err(syntax(lineno, format!("vertex {v} out of range")));
                }
                for name in parts {
                    b.add_attr_named(v, name);
                }
            }
            other => return Err(syntax(lineno, format!("unknown directive `{other}`"))),
        }
    }
    builder
        .map(|b| b.build())
        .ok_or_else(|| syntax(0, "missing `v` directive"))
}

/// Writes an attributed graph in the text format.
pub fn write_attributed<W: Write>(g: &AttributedGraph, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# scpm attributed graph")?;
    writeln!(w, "v {}", g.num_vertices())?;
    for (u, v) in g.graph().edges() {
        writeln!(w, "e {u} {v}")?;
    }
    for v in g.graph().vertices() {
        let attrs = g.attributes_of(v);
        if attrs.is_empty() {
            continue;
        }
        write!(w, "a {v}")?;
        for &a in attrs {
            write!(w, " {}", g.attr_name(a))?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Writes a vertex-induced subgraph in Graphviz DOT format, highlighting an
/// optional set of vertices (the paper's Figures 3, 5 and 6 are exactly
/// such drawings: the graph induced by an attribute set with the vertices
/// covered by dense subgraphs marked).
pub fn write_dot<W: Write>(
    g: &AttributedGraph,
    vertices: &[crate::csr::VertexId],
    highlight: &[crate::csr::VertexId],
    writer: W,
) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "graph induced {{")?;
    writeln!(w, "  node [shape=circle, style=filled, fillcolor=white];")?;
    for &v in vertices {
        if highlight.binary_search(&v).is_ok() {
            writeln!(w, "  {v} [fillcolor=lightblue];")?;
        } else {
            writeln!(w, "  {v};")?;
        }
    }
    for (i, &u) in vertices.iter().enumerate() {
        for &v in vertices.iter().skip(i + 1) {
            if g.graph().has_edge(u, v) {
                writeln!(w, "  {u} -- {v};")?;
            }
        }
    }
    writeln!(w, "}}")?;
    w.flush()
}

/// Loads an attributed graph from a file path.
pub fn load_attributed(path: impl AsRef<Path>) -> Result<AttributedGraph, ParseError> {
    let file = std::fs::File::open(path)?;
    read_attributed(file)
}

/// Saves an attributed graph to a file path, atomically (temp file →
/// sync → rename): an interrupted save never leaves a torn graph file
/// where a good one stood.
pub fn save_attributed(g: &AttributedGraph, path: impl AsRef<Path>) -> std::io::Result<()> {
    let mut bytes = Vec::new();
    write_attributed(g, &mut bytes)?;
    crate::fault::write_atomic(path.as_ref(), &bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::figure1;

    #[test]
    fn roundtrip_figure1() {
        let g = figure1();
        let mut buf = Vec::new();
        write_attributed(&g, &mut buf).unwrap();
        let g2 = read_attributed(buf.as_slice()).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
        assert_eq!(g2.num_attributes(), g.num_attributes());
        for v in g.graph().vertices() {
            let names: Vec<&str> = g.attributes_of(v).iter().map(|&a| g.attr_name(a)).collect();
            let names2: Vec<&str> = g2
                .attributes_of(v)
                .iter()
                .map(|&a| g2.attr_name(a))
                .collect();
            let mut s1 = names.clone();
            let mut s2 = names2.clone();
            s1.sort_unstable();
            s2.sort_unstable();
            assert_eq!(s1, s2, "attributes of {v}");
        }
        for (u, v) in g.graph().edges() {
            assert!(g2.graph().has_edge(u, v));
        }
    }

    #[test]
    fn parse_minimal() {
        let text = "# demo\nv 3\ne 0 1\ne 1 2\na 0 red blue\na 2 red\n";
        let g = read_attributed(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        let red = g.attr_id("red").unwrap();
        assert_eq!(g.vertices_with(red), &[0, 2]);
    }

    #[test]
    fn parse_errors() {
        assert!(matches!(
            read_attributed("e 0 1\n".as_bytes()),
            Err(ParseError::Syntax { line: 1, .. })
        ));
        assert!(matches!(
            read_attributed("v 2\ne 0 5\n".as_bytes()),
            Err(ParseError::Syntax { line: 2, .. })
        ));
        assert!(matches!(
            read_attributed("v 2\nx 1\n".as_bytes()),
            Err(ParseError::Syntax { line: 2, .. })
        ));
        assert!(matches!(
            read_attributed("".as_bytes()),
            Err(ParseError::Syntax { .. })
        ));
        assert!(matches!(
            read_attributed("v 1\nv 1\n".as_bytes()),
            Err(ParseError::Syntax { line: 2, .. })
        ));
    }

    #[test]
    fn dot_export_marks_highlights() {
        let g = figure1();
        let mut buf = Vec::new();
        write_dot(&g, &[2, 3, 4, 5], &[3, 4], &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.starts_with("graph induced {"));
        assert!(text.contains("3 [fillcolor=lightblue];"));
        assert!(text.contains("2;"));
        // The clique {3,4,5,6} (1-based) is {2,3,4,5} 0-based: 6 edges.
        assert_eq!(text.matches(" -- ").count(), 6);
    }

    #[test]
    fn file_roundtrip() {
        let g = figure1();
        let dir = std::env::temp_dir().join("scpm_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig1.txt");
        save_attributed(&g, &path).unwrap();
        let g2 = load_attributed(&path).unwrap();
        assert_eq!(g2.num_edges(), g.num_edges());
        std::fs::remove_file(&path).ok();
    }
}
