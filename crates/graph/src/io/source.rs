//! Streaming parsers for the common attributed-graph interchange shapes.
//!
//! Public releases of attributed graphs (SNAP edge lists, CiteSeer-style
//! `.content` tables, Pajek-flavored adjacency lists) almost always ship as
//! *separate* files: an edge list over arbitrary vertex tokens plus a
//! vertex→attribute table. This module parses any mix of those shapes into
//! a [`RawSource`] — an interned, *unnormalized* pool of edges and
//! vertex-attribute pairs. Normalization (id relabeling, dedup, self-loop
//! policy, statistics) lives one layer up, in `scpm_datasets::ingest`; the
//! byte-level grammar of every format is specified in `docs/DATASETS.md`.
//!
//! All parsers share one tokenizer: lines are split into fields on
//! whitespace and commas (so plain, TSV and CSV files all work), blank
//! lines and lines starting with `#` or `%` are ignored, and fields may be
//! double-quoted to carry separators (`"R Peppers"`; a doubled `""` is a
//! literal quote). Errors carry 1-based line numbers.
//!
//! ```
//! use scpm_graph::io::source::RawSource;
//!
//! let mut src = RawSource::new();
//! src.read_edge_list("0 1\n1 2\n".as_bytes()).unwrap();
//! src.read_attr_table("0 red blue\n2 red\n".as_bytes()).unwrap();
//! assert_eq!(src.edges.len(), 2);
//! assert_eq!(src.attributes.len(), 2);
//! assert_eq!(src.vertices.name(0), "0");
//! ```

use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

use super::{syntax, ParseError};
use crate::attributed::AttributedGraph;
use crate::csr::CsrGraph;

/// A string interner mapping tokens to dense `u32` ids in first-appearance
/// order, tracking whether every token is a canonical decimal integer
/// (which lets the ingest layer keep externally assigned numeric ids).
///
/// ```
/// use scpm_graph::io::source::Interner;
///
/// let mut it = Interner::new();
/// assert_eq!(it.intern("alice"), 0);
/// assert_eq!(it.intern("bob"), 1);
/// assert_eq!(it.intern("alice"), 0);
/// assert_eq!(it.name(1), "bob");
/// assert!(!it.all_numeric());
/// ```
#[derive(Clone, Debug)]
pub struct Interner {
    names: Vec<String>,
    index: HashMap<String, u32>,
    all_numeric: bool,
    max_numeric: u32,
}

impl Default for Interner {
    fn default() -> Self {
        Interner::new()
    }
}

/// Parses a token as a *canonical* decimal `u32`: ASCII digits only, no
/// leading zeros (except `"0"` itself), no sign. Canonicality matters
/// because two distinct tokens (`"7"`, `"07"`) must never collapse onto
/// one numeric id.
pub fn canonical_numeric(token: &str) -> Option<u32> {
    if token.is_empty() || !token.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    if token.len() > 1 && token.starts_with('0') {
        return None;
    }
    token.parse().ok()
}

impl Interner {
    /// An empty interner.
    pub fn new() -> Self {
        Interner {
            names: Vec::new(),
            index: HashMap::new(),
            all_numeric: true,
            max_numeric: 0,
        }
    }

    /// Interns `token`, returning its dense id (existing or fresh).
    pub fn intern(&mut self, token: &str) -> u32 {
        if let Some(&id) = self.index.get(token) {
            return id;
        }
        let id = self.names.len() as u32;
        match canonical_numeric(token) {
            Some(v) => self.max_numeric = self.max_numeric.max(v),
            None => self.all_numeric = false,
        }
        self.names.push(token.to_string());
        self.index.insert(token.to_string(), id);
        id
    }

    /// The id of `token`, if already interned.
    pub fn get(&self, token: &str) -> Option<u32> {
        self.index.get(token).copied()
    }

    /// The token behind id `i`.
    pub fn name(&self, i: u32) -> &str {
        &self.names[i as usize]
    }

    /// Number of distinct tokens interned.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no token has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// All tokens, in interning (first-appearance) order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Whether every interned token is a canonical decimal integer.
    pub fn all_numeric(&self) -> bool {
        self.all_numeric
    }

    /// The largest numeric token value seen (0 when none).
    pub fn max_numeric(&self) -> u32 {
        self.max_numeric
    }
}

/// A parsed-but-unnormalized graph source.
///
/// Repeated `read_*` calls accumulate: an edge file and an attribute table
/// parsed into the same `RawSource` share one vertex interner, which is how
/// split-file datasets (the common release shape) come back together.
/// Self-loops are counted but never stored; duplicate edges and pairs are
/// kept verbatim (the ingest layer merges and counts them).
#[derive(Clone, Debug, Default)]
pub struct RawSource {
    /// Vertex tokens, interned in first-appearance order.
    pub vertices: Interner,
    /// Attribute tokens, interned in first-appearance order.
    pub attributes: Interner,
    /// Edges over interned vertex ids, `(min, max)`-normalized, with
    /// duplicates preserved.
    pub edges: Vec<(u32, u32)>,
    /// Vertex-attribute pairs over interned ids, duplicates preserved.
    pub pairs: Vec<(u32, u32)>,
    /// Self-loops encountered (and dropped) while reading edges.
    pub self_loops: usize,
    /// `structural[v]`: vertex `v` appeared in an edge list or adjacency
    /// list (as opposed to only in an attribute table). Indexed by
    /// interned id; may be shorter than `vertices.len()`.
    pub structural: Vec<bool>,
}

impl RawSource {
    /// An empty source.
    pub fn new() -> Self {
        RawSource::default()
    }

    /// Whether interned vertex `v` appeared in structural (edge) context.
    pub fn is_structural(&self, v: u32) -> bool {
        self.structural.get(v as usize).copied().unwrap_or(false)
    }

    /// Reads an edge list: one edge per line, `u v` (an optional third
    /// field, e.g. a weight, is accepted and ignored). Self-loops are
    /// counted, not stored.
    pub fn read_edge_list<R: Read>(&mut self, reader: R) -> Result<(), ParseError> {
        let RawSource {
            vertices,
            edges,
            self_loops,
            structural,
            ..
        } = self;
        stream_edge_list_rows(vertices, structural, self_loops, reader, &mut |e| {
            edges.push(e);
            Ok(())
        })
    }

    /// Reads an adjacency list: each line names a source vertex (an
    /// optional trailing `:` on the first field is stripped) followed by
    /// its neighbors. A line with no neighbors declares an isolated
    /// vertex. Symmetric listings (each edge on both endpoints' lines)
    /// simply produce duplicates, merged at ingest.
    pub fn read_adjacency<R: Read>(&mut self, reader: R) -> Result<(), ParseError> {
        let RawSource {
            vertices,
            edges,
            self_loops,
            structural,
            ..
        } = self;
        stream_adjacency_rows(vertices, structural, self_loops, reader, &mut |e| {
            edges.push(e);
            Ok(())
        })
    }

    /// Reads a vertex→attribute table: each line is a vertex token
    /// followed by that vertex's attribute tokens. A bare vertex token
    /// declares the vertex with no attributes. A vertex may head at most
    /// one row per table — a second row for the same token is an error
    /// (real-world duplicate rows are nearly always data corruption).
    pub fn read_attr_table<R: Read>(&mut self, reader: R) -> Result<(), ParseError> {
        let RawSource {
            vertices,
            attributes,
            pairs,
            ..
        } = self;
        stream_attr_rows(vertices, attributes, reader, &mut |p| {
            pairs.push(p);
            Ok(())
        })
    }
}

/// A callback-driven twin of [`RawSource`] that interns tokens and counts
/// exactly like the buffering parsers but hands each edge / pair to a sink
/// instead of accumulating it — the substrate of the bounded-memory
/// external ingestion pass, which spills records to sorted runs on disk.
///
/// Re-reading the same files through a `StreamingSource` in the same order
/// reproduces the interned ids bit-for-bit (interning is
/// first-appearance-deterministic), which is what lets the external path's
/// second pass relabel records without ever holding them all in memory.
///
/// ```
/// use scpm_graph::io::source::StreamingSource;
///
/// let mut src = StreamingSource::new();
/// let mut m = 0usize;
/// src.read_edge_list("0 1\n1 2\n2 2\n".as_bytes(), &mut |_e| {
///     m += 1;
///     Ok(())
/// })
/// .unwrap();
/// assert_eq!((m, src.self_loops), (2, 1));
/// ```
#[derive(Clone, Debug, Default)]
pub struct StreamingSource {
    /// Vertex tokens, interned in first-appearance order.
    pub vertices: Interner,
    /// Attribute tokens, interned in first-appearance order.
    pub attributes: Interner,
    /// Self-loops encountered (and dropped) while reading edges.
    pub self_loops: usize,
    /// Structural-appearance marks, as in [`RawSource::structural`].
    pub structural: Vec<bool>,
}

impl StreamingSource {
    /// An empty streaming source.
    pub fn new() -> Self {
        StreamingSource::default()
    }

    /// Whether interned vertex `v` appeared in structural (edge) context.
    pub fn is_structural(&self, v: u32) -> bool {
        self.structural.get(v as usize).copied().unwrap_or(false)
    }

    /// Streams an edge list (same grammar as [`RawSource::read_edge_list`])
    /// into `emit`, one `(min, max)` edge per call.
    pub fn read_edge_list<R: Read>(
        &mut self,
        reader: R,
        emit: &mut dyn FnMut((u32, u32)) -> Result<(), ParseError>,
    ) -> Result<(), ParseError> {
        stream_edge_list_rows(
            &mut self.vertices,
            &mut self.structural,
            &mut self.self_loops,
            reader,
            emit,
        )
    }

    /// Streams an adjacency list (same grammar as
    /// [`RawSource::read_adjacency`]) into `emit`.
    pub fn read_adjacency<R: Read>(
        &mut self,
        reader: R,
        emit: &mut dyn FnMut((u32, u32)) -> Result<(), ParseError>,
    ) -> Result<(), ParseError> {
        stream_adjacency_rows(
            &mut self.vertices,
            &mut self.structural,
            &mut self.self_loops,
            reader,
            emit,
        )
    }

    /// Streams a vertex→attribute table (same grammar as
    /// [`RawSource::read_attr_table`]) into `emit`, one `(vertex, attr)`
    /// pair per call.
    pub fn read_attr_table<R: Read>(
        &mut self,
        reader: R,
        emit: &mut dyn FnMut((u32, u32)) -> Result<(), ParseError>,
    ) -> Result<(), ParseError> {
        stream_attr_rows(&mut self.vertices, &mut self.attributes, reader, emit)
    }
}

fn mark_structural(structural: &mut Vec<bool>, v: u32) {
    let v = v as usize;
    if structural.len() <= v {
        structural.resize(v + 1, false);
    }
    structural[v] = true;
}

/// Shared row loop behind both edge-list readers.
fn stream_edge_list_rows<R: Read>(
    vertices: &mut Interner,
    structural: &mut Vec<bool>,
    self_loops: &mut usize,
    reader: R,
    emit: &mut dyn FnMut((u32, u32)) -> Result<(), ParseError>,
) -> Result<(), ParseError> {
    for_each_row(reader, |lineno, fields| {
        if fields.len() < 2 {
            return Err(syntax(lineno, "edge line needs two fields `u v`"));
        }
        if fields.len() > 3 {
            return Err(syntax(
                lineno,
                format!(
                    "edge line has {} fields (max 3: `u v weight`)",
                    fields.len()
                ),
            ));
        }
        let u = vertices.intern(&fields[0]);
        let v = vertices.intern(&fields[1]);
        mark_structural(structural, u);
        mark_structural(structural, v);
        if u == v {
            *self_loops += 1;
            Ok(())
        } else {
            emit((u.min(v), u.max(v)))
        }
    })
}

/// Shared row loop behind both adjacency readers.
fn stream_adjacency_rows<R: Read>(
    vertices: &mut Interner,
    structural: &mut Vec<bool>,
    self_loops: &mut usize,
    reader: R,
    emit: &mut dyn FnMut((u32, u32)) -> Result<(), ParseError>,
) -> Result<(), ParseError> {
    for_each_row(reader, |lineno, fields| {
        let head = fields[0].strip_suffix(':').unwrap_or(&fields[0]);
        if head.is_empty() {
            return Err(syntax(lineno, "adjacency line has an empty source vertex"));
        }
        let u = vertices.intern(head);
        mark_structural(structural, u);
        for tok in &fields[1..] {
            let v = vertices.intern(tok);
            mark_structural(structural, v);
            if u == v {
                *self_loops += 1;
            } else {
                emit((u.min(v), u.max(v)))?;
            }
        }
        Ok(())
    })
}

/// Shared row loop behind both attribute-table readers. Duplicate-row
/// detection is per call, matching the buffering reader.
fn stream_attr_rows<R: Read>(
    vertices: &mut Interner,
    attributes: &mut Interner,
    reader: R,
    emit: &mut dyn FnMut((u32, u32)) -> Result<(), ParseError>,
) -> Result<(), ParseError> {
    let mut seen: HashMap<u32, usize> = HashMap::new();
    for_each_row(reader, |lineno, fields| {
        let v = vertices.intern(&fields[0]);
        if let Some(first) = seen.insert(v, lineno) {
            return Err(syntax(
                lineno,
                format!(
                    "duplicate attribute row for vertex `{}` (first at line {first})",
                    fields[0]
                ),
            ));
        }
        for tok in &fields[1..] {
            let a = attributes.intern(tok);
            emit((v, a))?;
        }
        Ok(())
    })
}

/// Splits one line into fields on whitespace/commas, honoring double
/// quotes (`""` inside a quoted field is a literal quote).
pub(crate) fn split_fields(line: &str, lineno: usize) -> Result<Vec<String>, ParseError> {
    let mut fields = Vec::new();
    let mut chars = line.chars().peekable();
    loop {
        // Skip separators.
        while matches!(chars.peek(), Some(c) if c.is_whitespace() || *c == ',') {
            chars.next();
        }
        let Some(&c) = chars.peek() else { break };
        let mut field = String::new();
        if c == '"' {
            chars.next();
            loop {
                match chars.next() {
                    Some('"') => {
                        if chars.peek() == Some(&'"') {
                            chars.next();
                            field.push('"');
                        } else {
                            break;
                        }
                    }
                    Some(ch) => field.push(ch),
                    None => return Err(syntax(lineno, "unterminated quoted field")),
                }
            }
        } else {
            while let Some(&ch) = chars.peek() {
                if ch.is_whitespace() || ch == ',' {
                    break;
                }
                field.push(ch);
                chars.next();
            }
        }
        fields.push(field);
    }
    Ok(fields)
}

/// Quotes `field` if it contains a separator or quote, else borrows it.
fn quoted(field: &str) -> std::borrow::Cow<'_, str> {
    if field.is_empty() || field.contains(|c: char| c.is_whitespace() || c == ',' || c == '"') {
        std::borrow::Cow::Owned(format!("\"{}\"", field.replace('"', "\"\"")))
    } else {
        std::borrow::Cow::Borrowed(field)
    }
}

/// Streams non-comment, non-blank rows of `reader` through `f` as
/// `(lineno, fields)`. Rows that split to zero fields (all separators)
/// are skipped like blank lines.
fn for_each_row<R: Read>(
    reader: R,
    mut f: impl FnMut(usize, Vec<String>) -> Result<(), ParseError>,
) -> Result<(), ParseError> {
    let reader = BufReader::new(reader);
    for (idx, line) in reader.lines().enumerate() {
        let lineno = idx + 1;
        let line = line?;
        let trimmed = line.trim_start();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let fields = split_fields(&line, lineno)?;
        if fields.is_empty() {
            continue;
        }
        f(lineno, fields)?;
    }
    Ok(())
}

/// Writes `g`'s edges as an edge list (`u<TAB>v`, one edge per line, both
/// endpoints as decimal vertex ids). The counterpart of
/// [`RawSource::read_edge_list`].
pub fn write_edge_list<W: Write>(g: &CsrGraph, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# scpm edge list: {} vertices", g.num_vertices())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()
}

/// Writes `g` as an adjacency list (`u: v1 v2 ...`, every vertex gets a
/// line, each edge appears on both endpoints' lines). The counterpart of
/// [`RawSource::read_adjacency`].
pub fn write_adjacency<W: Write>(g: &CsrGraph, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# scpm adjacency list: {} vertices", g.num_vertices())?;
    for u in g.vertices() {
        write!(w, "{u}:")?;
        for &v in g.neighbors(u) {
            write!(w, " {v}")?;
        }
        writeln!(w)?;
    }
    w.flush()
}

/// Writes `g`'s vertex→attribute table: one row per vertex (including
/// attribute-less vertices, so the vertex universe is explicit), attribute
/// names quoted when they contain separators. The counterpart of
/// [`RawSource::read_attr_table`].
pub fn write_attr_table<W: Write>(g: &AttributedGraph, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# scpm vertex-attribute table: {} vertices",
        g.num_vertices()
    )?;
    for v in g.graph().vertices() {
        write!(w, "{v}")?;
        for &a in g.attributes_of(v) {
            write!(w, "\t{}", quoted(g.attr_name(a)))?;
        }
        writeln!(w)?;
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::figure1;

    #[test]
    fn edge_list_whitespace_and_csv_parse_identically() {
        let mut ws = RawSource::new();
        ws.read_edge_list("# c\n0 1\n1\t2\n".as_bytes()).unwrap();
        let mut csv = RawSource::new();
        csv.read_edge_list("% c\n0,1\n1,2\n".as_bytes()).unwrap();
        assert_eq!(ws.edges, csv.edges);
        assert_eq!(ws.vertices.names(), csv.vertices.names());
        assert!(ws.vertices.all_numeric());
    }

    #[test]
    fn edge_list_counts_self_loops_and_accepts_weights() {
        let mut s = RawSource::new();
        s.read_edge_list("0 1 0.5\n2 2\n1 0\n".as_bytes()).unwrap();
        assert_eq!(s.self_loops, 1);
        assert_eq!(s.edges, vec![(0, 1), (0, 1)]); // duplicate kept
    }

    #[test]
    fn edge_list_field_count_errors() {
        let mut s = RawSource::new();
        let e = s.read_edge_list("0\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("two fields"));
        let e = s.read_edge_list("0 1 2 3\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("fields"));
    }

    #[test]
    fn adjacency_with_and_without_colon() {
        let mut s = RawSource::new();
        s.read_adjacency("0: 1 2\n1 0\n3:\n".as_bytes()).unwrap();
        assert_eq!(s.edges, vec![(0, 1), (0, 2), (0, 1)]);
        assert_eq!(s.vertices.len(), 4); // isolated 3 declared
        assert!(s.is_structural(3));
    }

    #[test]
    fn attr_table_duplicate_vertex_row_is_an_error() {
        let mut s = RawSource::new();
        let e = s
            .read_attr_table("7 red\n8 blue\n7 green\n".as_bytes())
            .unwrap_err();
        let msg = e.to_string();
        assert!(msg.contains("duplicate attribute row"), "{msg}");
        assert!(msg.contains("line 3"), "{msg}");
    }

    #[test]
    fn attr_table_bare_row_declares_vertex() {
        let mut s = RawSource::new();
        s.read_attr_table("5\n".as_bytes()).unwrap();
        assert_eq!(s.vertices.len(), 1);
        assert!(s.pairs.is_empty());
        assert!(!s.is_structural(0));
    }

    #[test]
    fn quoted_fields_roundtrip_through_writer() {
        let mut b = crate::attributed::AttributedGraphBuilder::new(2);
        b.add_edge(0, 1);
        b.add_attr_named(0, "R Peppers");
        b.add_attr_named(1, "plain");
        b.add_attr_named(1, "has\"quote");
        let g = b.build();
        let mut buf = Vec::new();
        write_attr_table(&g, &mut buf).unwrap();
        let mut s = RawSource::new();
        s.read_attr_table(buf.as_slice()).unwrap();
        assert_eq!(s.attributes.len(), 3);
        assert!(s.attributes.get("R Peppers").is_some());
        assert!(s.attributes.get("has\"quote").is_some());
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        let mut s = RawSource::new();
        let e = s.read_attr_table("0 \"oops\n".as_bytes()).unwrap_err();
        assert!(e.to_string().contains("unterminated"));
    }

    #[test]
    fn numeric_canonicality() {
        assert_eq!(canonical_numeric("0"), Some(0));
        assert_eq!(canonical_numeric("42"), Some(42));
        assert_eq!(canonical_numeric("07"), None);
        assert_eq!(canonical_numeric("-3"), None);
        assert_eq!(canonical_numeric("4e2"), None);
        assert_eq!(canonical_numeric(""), None);
        let mut it = Interner::new();
        it.intern("3");
        assert!(it.all_numeric());
        it.intern("07");
        assert!(!it.all_numeric());
    }

    #[test]
    fn streaming_source_matches_buffered_source() {
        let attr_text = "0 red \"b c\"\n2 red\n9\n";
        let mut raw = RawSource::new();
        raw.read_edge_list("0 1 0.5\n2 2\n1,0\n".as_bytes())
            .unwrap();
        raw.read_adjacency("3: 1 2\n".as_bytes()).unwrap();
        raw.read_attr_table(attr_text.as_bytes()).unwrap();

        let mut st = StreamingSource::new();
        let mut edges = Vec::new();
        let mut pairs = Vec::new();
        st.read_edge_list("0 1 0.5\n2 2\n1,0\n".as_bytes(), &mut |e| {
            edges.push(e);
            Ok(())
        })
        .unwrap();
        st.read_adjacency("3: 1 2\n".as_bytes(), &mut |e| {
            edges.push(e);
            Ok(())
        })
        .unwrap();
        st.read_attr_table(attr_text.as_bytes(), &mut |p| {
            pairs.push(p);
            Ok(())
        })
        .unwrap();

        assert_eq!(edges, raw.edges);
        assert_eq!(pairs, raw.pairs);
        assert_eq!(st.self_loops, raw.self_loops);
        assert_eq!(st.structural, raw.structural);
        assert_eq!(st.vertices.names(), raw.vertices.names());
        assert_eq!(st.attributes.names(), raw.attributes.names());
    }

    #[test]
    fn streaming_sink_errors_propagate() {
        let mut st = StreamingSource::new();
        let e = st
            .read_edge_list("0 1\n".as_bytes(), &mut |_| {
                Err(ParseError::Io(std::io::Error::other("disk full")))
            })
            .unwrap_err();
        assert!(e.to_string().contains("disk full"));
    }

    #[test]
    fn writers_roundtrip_figure1_topology() {
        let g = figure1();
        let mut buf = Vec::new();
        write_edge_list(g.graph(), &mut buf).unwrap();
        let mut s = RawSource::new();
        s.read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(s.edges.len(), g.num_edges());
        assert!(s.vertices.all_numeric());

        let mut buf = Vec::new();
        write_adjacency(g.graph(), &mut buf).unwrap();
        let mut s = RawSource::new();
        s.read_adjacency(buf.as_slice()).unwrap();
        // Each edge listed twice; dedup happens at ingest.
        assert_eq!(s.edges.len(), 2 * g.num_edges());
    }
}
