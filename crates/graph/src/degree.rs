//! Degree statistics: the empirical degree distribution `p(α)` used by the
//! analytical null model (Theorem 2 of the paper).

use crate::csr::CsrGraph;

/// The empirical degree distribution of a graph.
///
/// Stores `count[α]` = number of vertices with degree `α` for
/// `α ∈ 0..=max_degree`, and exposes `p(α) = count[α] / n`.
#[derive(Clone, Debug, PartialEq)]
pub struct DegreeDistribution {
    counts: Vec<usize>,
    n: usize,
}

impl DegreeDistribution {
    /// Computes the distribution of `g`.
    pub fn from_graph(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let mut counts = vec![0usize; g.max_degree() + 1];
        for v in g.vertices() {
            counts[g.degree(v)] += 1;
        }
        DegreeDistribution { counts, n }
    }

    /// Builds a distribution from raw per-degree counts (for tests and
    /// synthetic scenarios).
    pub fn from_counts(counts: Vec<usize>) -> Self {
        let n = counts.iter().sum();
        DegreeDistribution { counts, n }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Maximum degree `m` (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        self.counts.len().saturating_sub(1)
    }

    /// Number of vertices with degree exactly `alpha`.
    pub fn count(&self, alpha: usize) -> usize {
        self.counts.get(alpha).copied().unwrap_or(0)
    }

    /// `p(α)`: fraction of vertices with degree `alpha`.
    pub fn p(&self, alpha: usize) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.count(alpha) as f64 / self.n as f64
        }
    }

    /// Iterates over `(α, count)` pairs with nonzero count.
    pub fn nonzero(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(a, &c)| (a, c))
    }

    /// Mean degree.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let total: usize = self.nonzero().map(|(a, c)| a * c).sum();
        total as f64 / self.n as f64
    }

    /// Fraction of vertices with degree `>= alpha`.
    pub fn tail(&self, alpha: usize) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let c: usize = self.counts.iter().skip(alpha).sum();
        c as f64 / self.n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn star_graph_distribution() {
        // Star K_{1,3}: center degree 3, three leaves degree 1.
        let g = graph_from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        let d = DegreeDistribution::from_graph(&g);
        assert_eq!(d.num_vertices(), 4);
        assert_eq!(d.max_degree(), 3);
        assert_eq!(d.count(1), 3);
        assert_eq!(d.count(3), 1);
        assert_eq!(d.count(2), 0);
        assert!((d.p(1) - 0.75).abs() < 1e-12);
        assert!((d.mean() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn probabilities_sum_to_one() {
        let g = graph_from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]);
        let d = DegreeDistribution::from_graph(&g);
        let total: f64 = (0..=d.max_degree()).map(|a| d.p(a)).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tail_fractions() {
        let d = DegreeDistribution::from_counts(vec![2, 3, 5]); // deg0:2 deg1:3 deg2:5
        assert!((d.tail(0) - 1.0).abs() < 1e-12);
        assert!((d.tail(1) - 0.8).abs() < 1e-12);
        assert!((d.tail(2) - 0.5).abs() < 1e-12);
        assert!((d.tail(3) - 0.0).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_distribution() {
        let g = crate::csr::CsrGraph::empty(0);
        let d = DegreeDistribution::from_graph(&g);
        assert_eq!(d.num_vertices(), 0);
        assert_eq!(d.p(0), 0.0);
        assert_eq!(d.mean(), 0.0);
    }

    #[test]
    fn nonzero_iterates_present_degrees() {
        let d = DegreeDistribution::from_counts(vec![0, 4, 0, 2]);
        let nz: Vec<_> = d.nonzero().collect();
        assert_eq!(nz, vec![(1, 4), (3, 2)]);
    }
}
