//! Attributed-graph substrate for structural correlation pattern mining.
//!
//! This crate provides the data model from Silva, Meira & Zaki,
//! *"Mining Attribute-structure Correlated Patterns in Large Attributed
//! Graphs"* (VLDB 2012): an attributed graph is a 4-tuple
//! `G = (V, E, A, F)` where `V` is a vertex set, `E` an undirected edge set,
//! `A` a set of attributes and `F : V -> P(A)` assigns each vertex a set of
//! attributes.
//!
//! The crate contains:
//!
//! * [`CsrGraph`] — an immutable compressed-sparse-row undirected graph with
//!   sorted neighbor lists (binary-searchable adjacency).
//! * [`bitadj`] — packed `u64`-word bitsets ([`VertexBitset`]) and a dense
//!   bit-matrix adjacency ([`BitAdjacency`]) backing the mining hot path
//!   (see `docs/PERFORMANCE.md`).
//! * [`GraphBuilder`] — incremental edge-list construction with
//!   deduplication and self-loop removal.
//! * [`AttributedGraph`] — a [`CsrGraph`] plus a per-vertex attribute store
//!   and an inverted index (attribute → sorted vertex list).
//! * [`delta`] — insert-only change sets (`GraphDelta`) applied to an
//!   attributed graph, reporting the novel effects the incremental miner's
//!   dirty-set computation consumes (see `docs/INCREMENTAL.md`).
//! * [`induced`] — induced-subgraph extraction used by every mining
//!   algorithm in the workspace.
//! * [`generators`] — random graph models (G(n,p), G(n,m), Barabási–Albert,
//!   planted communities) and attribute-assignment models.
//! * [`io`] — text formats for attributed graphs: the unified `v`/`e`/`a`
//!   file plus streaming parsers for the interchange shapes real datasets
//!   ship in (edge lists, adjacency lists, vertex→attribute tables).
//! * [`snapshot`] — the versioned, checksummed binary snapshot format,
//!   written atomically (temp file → fsync → rename).
//! * [`journal`] — the append-only write-ahead log of graph deltas
//!   backing crash-safe serving (see `docs/DURABILITY.md`).
//! * [`fault`] — deterministic fault injection over durability I/O and
//!   the atomic file writer.
//! * [`figure1`] — the 11-vertex example of Figure 1 in the paper, used as a
//!   golden fixture for Table 1.

#![deny(missing_docs)]

pub mod attributed;
pub mod bitadj;
pub mod builder;
pub mod cluster;
pub mod components;
pub mod csr;
pub mod degree;
pub mod delta;
pub mod fault;
pub mod figure1;
pub mod generators;
pub mod induced;
pub mod io;
pub mod journal;
pub mod kcore;
pub mod snapshot;
pub mod stats;
pub mod traversal;

pub use attributed::{AttrId, AttributedGraph, AttributedGraphBuilder};
pub use bitadj::{BitAdjacency, VertexBitset};
pub use builder::GraphBuilder;
pub use cluster::{clustering, local_clustering, ClusteringStats};
pub use components::Components;
pub use csr::{CsrGraph, VertexId};
pub use degree::DegreeDistribution;
pub use delta::{AppliedDelta, DeltaError, DeltaOp, GraphDelta};
pub use fault::{write_atomic, FaultInjector, FaultMode, FaultPlan};
pub use induced::InducedSubgraph;
pub use io::source::{Interner, RawSource, StreamingSource};
pub use journal::{JournalError, JournalRead, JournalRecord, JournalWriter, TornTail};
pub use kcore::CoreDecomposition;
pub use snapshot::{
    decode, encode, encode_v2, fnv1a64, load_snapshot, save_snapshot, write_snapshot_atomic,
    Fnv1a64, MappedSnapshot, SnapshotError,
};
pub use stats::GraphSummary;
