//! Normative byte layout of snapshot **v3** and the shared structural
//! validators.
//!
//! A v3 snapshot is a 64-byte header, a section directory, and seven
//! 64-byte-aligned sections (gaps zero-filled). Everything is
//! little-endian. The byte-exact table lives in `docs/DATASETS.md`; this
//! module is the single source of truth for offsets so the in-memory
//! encoder ([`super::encode`]), the owned decoder ([`super::decode`]), the
//! zero-copy reader ([`super::MappedSnapshot`]) and the external
//! (bounded-memory) ingest writer in `scpm-datasets` all agree byte for
//! byte.
//!
//! ```text
//! offset  0  "SCPMSNAP"                magic (8 bytes)
//! offset  8  u32 version = 3
//! offset 12  u32 section_count = 7
//! offset 16  u64 n                     vertex count
//! offset 24  u64 m                     undirected edge count
//! offset 32  u64 a                     attribute count
//! offset 40  u64 p                     vertex-attribute pair count
//! offset 48  u64 total_len             exact file length in bytes
//! offset 56  u64 header_checksum       FNV-1a 64 of bytes [0,56) ++ directory
//! offset 64  directory: 7 × 32-byte entries
//!            { u32 section_id, u32 reserved=0, u64 offset, u64 len,
//!              u64 checksum (FNV-1a 64 of the payload bytes) }
//! sections   each starts at the next multiple of 64; the gap between the
//!            directory (or previous section) and a section start is
//!            zero-filled and verified as part of that section's lazy check
//! ```
//!
//! Sections, in file order (payload lengths are implied by the header
//! counts; the directory repeats them as a cross-check):
//!
//! | id | name          | payload                                            |
//! |----|---------------|----------------------------------------------------|
//! | 1  | `CSR_OFFSETS` | `(n+1) × u64` — `offsets[n] = 2m`                  |
//! | 2  | `CSR_EDGES`   | `2m × u32` — concatenated sorted neighbor lists    |
//! | 3  | `ATTR_OFFSETS`| `(n+1) × u64` — `offsets[n] = p`                   |
//! | 4  | `VERTEX_ATTRS`| `p × u32` — sorted attribute ids per vertex        |
//! | 5  | `INV_OFFSETS` | `(a+1) × u64` — `offsets[a] = p`                   |
//! | 6  | `INV_VERTICES`| `p × u32` — sorted vertex ids per attribute        |
//! | 7  | `INTERNER`    | `a × (u32 len, bytes)` — attribute names in id order|
//!
//! Checksums are validated **lazily per section**: the header checksum
//! (which covers the directory, and therefore every section checksum) is
//! verified when a snapshot is opened; a section's payload checksum plus
//! its structural invariants are verified the first time that section is
//! touched. Every byte of the file is covered by exactly one check:
//! header/directory by the header checksum, payloads by their section
//! checksum, and alignment padding by the zero-fill verification of the
//! following section.

use super::SnapshotError;

/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 64;
/// Length of one directory entry in bytes.
pub const DIR_ENTRY_LEN: usize = 32;
/// Number of sections in a v3 snapshot.
pub const SECTION_COUNT: usize = 7;
/// Section alignment: every section starts on a 64-byte boundary.
pub const ALIGN: usize = 64;
/// File offset of the header checksum field.
pub const HEADER_CHECKSUM_OFFSET: usize = 56;
/// File offset of the directory (first entry).
pub const DIR_OFFSET: usize = HEADER_LEN;
/// Total length of the directory in bytes.
pub const DIR_LEN: usize = SECTION_COUNT * DIR_ENTRY_LEN;

/// The seven v3 sections, in file order. The `u32` discriminant is the
/// on-disk section id.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u32)]
pub enum Section {
    /// `(n+1) × u64` CSR neighbor-array offsets.
    CsrOffsets = 1,
    /// `2m × u32` concatenated sorted neighbor lists.
    CsrEdges = 2,
    /// `(n+1) × u64` vertex→attribute offsets.
    AttrOffsets = 3,
    /// `p × u32` sorted attribute ids per vertex.
    VertexAttrs = 4,
    /// `(a+1) × u64` inverted-index offsets.
    InvOffsets = 5,
    /// `p × u32` sorted vertex ids per attribute.
    InvVertices = 6,
    /// `a × (u32 len, bytes)` attribute names.
    Interner = 7,
}

/// All sections in file order.
pub const SECTIONS: [Section; SECTION_COUNT] = [
    Section::CsrOffsets,
    Section::CsrEdges,
    Section::AttrOffsets,
    Section::VertexAttrs,
    Section::InvOffsets,
    Section::InvVertices,
    Section::Interner,
];

impl Section {
    /// Zero-based index of the section in file/directory order.
    #[inline]
    pub fn index(self) -> usize {
        self as usize - 1
    }

    /// Human-readable section name (used in error messages and docs).
    pub fn name(self) -> &'static str {
        match self {
            Section::CsrOffsets => "csr-offsets",
            Section::CsrEdges => "csr-edges",
            Section::AttrOffsets => "attr-offsets",
            Section::VertexAttrs => "vertex-attrs",
            Section::InvOffsets => "inv-offsets",
            Section::InvVertices => "inv-vertices",
            Section::Interner => "interner",
        }
    }
}

/// Rounds `x` up to the next multiple of [`ALIGN`].
#[inline]
pub fn align_up(x: u64) -> u64 {
    x.div_ceil(ALIGN as u64) * ALIGN as u64
}

/// The logical counts a v3 header carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Counts {
    /// Vertex count `n`.
    pub n: u64,
    /// Undirected edge count `m`.
    pub m: u64,
    /// Attribute count `a`.
    pub a: u64,
    /// Vertex-attribute pair count `p`.
    pub pairs: u64,
}

/// One computed section extent: where the payload lives and where the
/// padded region feeding into it starts.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Extent {
    /// Start of the zero-filled padding run preceding the payload (equals
    /// the end of the previous section's payload, or the directory end for
    /// the first section).
    pub pad_start: u64,
    /// Absolute payload offset (64-byte aligned).
    pub offset: u64,
    /// Payload length in bytes (unpadded).
    pub len: u64,
}

/// The complete computed layout of a v3 file: section extents plus the
/// exact total file length.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Layout {
    /// Extents indexed by [`Section::index`].
    pub extents: [Extent; SECTION_COUNT],
    /// Exact file length in bytes (end of the last payload; no trailing
    /// padding).
    pub total_len: u64,
}

/// Payload length of each section given the header counts and the total
/// interner byte length (`Σ (4 + name_len)`).
pub fn section_lens(c: Counts, interner_len: u64) -> [u64; SECTION_COUNT] {
    [
        (c.n + 1) * 8,
        c.m * 2 * 4,
        (c.n + 1) * 8,
        c.pairs * 4,
        (c.a + 1) * 8,
        c.pairs * 4,
        interner_len,
    ]
}

/// Computes the canonical layout for the given counts: sections are placed
/// in id order, each aligned up to the next 64-byte boundary.
pub fn layout(c: Counts, interner_len: u64) -> Layout {
    let lens = section_lens(c, interner_len);
    let mut extents = [Extent {
        pad_start: 0,
        offset: 0,
        len: 0,
    }; SECTION_COUNT];
    let mut cursor = (HEADER_LEN + DIR_LEN) as u64;
    for (i, &len) in lens.iter().enumerate() {
        let offset = align_up(cursor);
        extents[i] = Extent {
            pad_start: cursor,
            offset,
            len,
        };
        cursor = offset + len;
    }
    Layout {
        extents,
        total_len: cursor,
    }
}

/// Reads a little-endian `u32` at byte offset `at`.
#[inline]
pub fn u32_at(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())
}

/// Reads a little-endian `u64` at byte offset `at`.
#[inline]
pub fn u64_at(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

fn err_range(reading: &'static str, value: u64) -> SnapshotError {
    SnapshotError::OutOfRange { reading, value }
}

/// Validates an offsets-style section (`count+1` little-endian `u64`
/// values): starts at 0, monotone non-decreasing, ends at `last`, and every
/// value fits in `usize`.
pub fn check_offsets(
    bytes: &[u8],
    count: u64,
    last: u64,
    reading: &'static str,
) -> Result<(), SnapshotError> {
    debug_assert_eq!(bytes.len() as u64, (count + 1) * 8);
    if u64_at(bytes, 0) != 0 {
        return Err(err_range(reading, u64_at(bytes, 0)));
    }
    let mut prev = 0u64;
    for i in 1..=count as usize {
        let cur = u64_at(bytes, i * 8);
        if cur < prev || cur > usize::MAX as u64 {
            return Err(err_range(reading, cur));
        }
        prev = cur;
    }
    if prev != last {
        return Err(err_range(reading, prev));
    }
    Ok(())
}

/// Validates a grouped id section (`total` little-endian `u32` values split
/// into runs by `offsets`): each run strictly sorted ascending, every id
/// `< id_bound`, and (when `forbid_self` is set) no id equal to its own
/// group index — the no-self-loop rule of CSR edge lists.
pub fn check_grouped_ids(
    bytes: &[u8],
    offsets: &[u8],
    groups: u64,
    id_bound: u64,
    forbid_self: bool,
    reading: &'static str,
) -> Result<(), SnapshotError> {
    for g in 0..groups as usize {
        let start = u64_at(offsets, g * 8) as usize;
        let end = u64_at(offsets, (g + 1) * 8) as usize;
        let mut prev: Option<u32> = None;
        for slot in start..end {
            let id = u32_at(bytes, slot * 4);
            if id as u64 >= id_bound {
                return Err(err_range(reading, id as u64));
            }
            if forbid_self && id as usize == g {
                return Err(err_range(reading, id as u64));
            }
            if let Some(p) = prev {
                if id <= p {
                    return Err(err_range(reading, id as u64));
                }
            }
            prev = Some(id);
        }
    }
    Ok(())
}

/// Verifies that the CSR edge section is symmetric: every directed entry
/// `(v, u)` has its mirror `(u, v)`. Binary-searches the mirror list, so
/// the cost is `O(E log d_max)` — paid once per open, on first touch.
pub fn check_edge_symmetry(edges: &[u8], offsets: &[u8], n: u64) -> Result<(), SnapshotError> {
    for v in 0..n as usize {
        let start = u64_at(offsets, v * 8) as usize;
        let end = u64_at(offsets, (v + 1) * 8) as usize;
        for slot in start..end {
            let u = u32_at(edges, slot * 4) as usize;
            // Mirror list of u, binary-searched for v.
            let (mut lo, mut hi) = (
                u64_at(offsets, u * 8) as usize,
                u64_at(offsets, (u + 1) * 8) as usize,
            );
            let mut found = false;
            while lo < hi {
                let mid = (lo + hi) / 2;
                let w = u32_at(edges, mid * 4) as usize;
                if w == v {
                    found = true;
                    break;
                } else if w < v {
                    lo = mid + 1;
                } else {
                    hi = mid;
                }
            }
            if !found {
                return Err(err_range("asymmetric edge", u as u64));
            }
        }
    }
    Ok(())
}

/// Verifies that the inverted index is the exact transpose of the
/// vertex→attribute table: walking vertices in ascending order, the `k`-th
/// occurrence of attribute `a` must sit at `inv_offsets[a] + k`. Linear in
/// the pair count.
pub fn check_inverted_transpose(
    attr_offsets: &[u8],
    vertex_attrs: &[u8],
    inv_offsets: &[u8],
    inv_vertices: &[u8],
    n: u64,
    a: u64,
) -> Result<(), SnapshotError> {
    let mut cursor: Vec<u64> = (0..a as usize)
        .map(|x| u64_at(inv_offsets, x * 8))
        .collect();
    for v in 0..n as usize {
        let start = u64_at(attr_offsets, v * 8) as usize;
        let end = u64_at(attr_offsets, (v + 1) * 8) as usize;
        for slot in start..end {
            let attr = u32_at(vertex_attrs, slot * 4) as usize;
            let c = cursor[attr];
            if c >= u64_at(inv_offsets, (attr + 1) * 8)
                || u32_at(inv_vertices, c as usize * 4) as usize != v
            {
                return Err(err_range("inverted index entry", attr as u64));
            }
            cursor[attr] = c + 1;
        }
    }
    for (x, &c) in cursor.iter().enumerate() {
        if c != u64_at(inv_offsets, (x + 1) * 8) {
            return Err(err_range("inverted index length", x as u64));
        }
    }
    Ok(())
}

/// Validates the interner section: exactly `a` length-prefixed names that
/// consume the section exactly, each valid UTF-8 and pairwise distinct.
/// Returns the byte range of each name within the section.
pub fn check_interner(bytes: &[u8], a: u64) -> Result<Vec<(usize, usize)>, SnapshotError> {
    let mut spans = Vec::with_capacity(a as usize);
    let mut seen: std::collections::HashSet<&[u8]> =
        std::collections::HashSet::with_capacity(a as usize);
    let mut at = 0usize;
    for i in 0..a {
        if at + 4 > bytes.len() {
            return Err(SnapshotError::Truncated {
                reading: "attribute name length",
            });
        }
        let len = u32_at(bytes, at) as usize;
        at += 4;
        if at + len > bytes.len() {
            return Err(SnapshotError::Truncated {
                reading: "attribute name",
            });
        }
        let raw = &bytes[at..at + len];
        std::str::from_utf8(raw).map_err(|_| SnapshotError::BadName)?;
        // Duplicate names would collapse ids on re-intern; reject, exactly
        // as the v2 structural pass did.
        if !seen.insert(raw) {
            return Err(err_range("duplicate attribute name", i));
        }
        spans.push((at, at + len));
        at += len;
    }
    if at != bytes.len() {
        return Err(SnapshotError::TrailingData {
            bytes: bytes.len() - at,
        });
    }
    Ok(spans)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_directory_constants() {
        assert_eq!(HEADER_LEN + DIR_LEN, 288);
        assert_eq!(align_up(288), 320);
        assert_eq!(align_up(320), 320);
        assert_eq!(align_up(0), 0);
        assert_eq!(align_up(1), 64);
    }

    #[test]
    fn layout_is_aligned_and_dense() {
        let c = Counts {
            n: 11,
            m: 14,
            a: 5,
            pairs: 19,
        };
        let l = layout(c, 37);
        let mut prev_end = (HEADER_LEN + DIR_LEN) as u64;
        for e in &l.extents {
            assert_eq!(e.offset % ALIGN as u64, 0);
            assert_eq!(e.pad_start, prev_end);
            assert!(e.offset >= e.pad_start);
            assert!(e.offset - e.pad_start < ALIGN as u64);
            prev_end = e.offset + e.len;
        }
        assert_eq!(l.total_len, prev_end);
    }
}
