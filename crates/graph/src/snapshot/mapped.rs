//! Zero-copy snapshot reader over a memory map.
//!
//! [`MappedSnapshot`] opens a v3 snapshot file through the `memmap2` shim
//! and serves the CSR arrays, attribute tables and interner directly out
//! of the mapping — no decode pass, no heap copy of the payload. Section
//! checksums (and the structural invariants behind them) are validated
//! **lazily, per section, on first touch**, so opening a multi-gigabyte
//! snapshot costs one header+directory check and the out-of-core mining
//! driver only ever pays for the sections (and pages) it actually reads.
//!
//! Legacy v2 files are *heap-converted* on open: decoded through the
//! owned path and re-encoded as v3 into an 8-byte-aligned heap buffer, so
//! callers see one uniform accessor surface either way.
//!
//! All numeric accessors hand out `&[u32]`/`&[u64]` slices cast straight
//! from the mapping on little-endian targets (every section offset is
//! 64-byte aligned and the mapping base is page- or word-aligned, so the
//! casts are always in-bounds and aligned). On big-endian targets the
//! sections are converted once into cached heap vectors — same API,
//! no zero-copy.

use std::fs::File;
use std::path::Path;
use std::sync::OnceLock;

use super::layout::{self, Counts, Layout, Section, SECTIONS};
use super::{
    check_v3_section, materialize_v3, parse_v3_header, DirEntry, SnapshotError, MAGIC, VERSION,
    VERSION_V2,
};
use crate::attributed::AttributedGraph;
use crate::csr::VertexId;

/// An 8-byte-aligned owned byte buffer (backed by `u64` words) — the
/// fallback backing for converted v2 files and in-memory buffers.
#[derive(Debug)]
struct AlignedBuf {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBuf {
    fn from_bytes(bytes: &[u8]) -> AlignedBuf {
        let len = bytes.len();
        let mut words = vec![0u64; len.div_ceil(8)];
        // SAFETY: the word buffer spans at least `len` bytes.
        let dst = unsafe {
            std::slice::from_raw_parts_mut(words.as_mut_ptr() as *mut u8, words.len() * 8)
        };
        dst[..len].copy_from_slice(bytes);
        AlignedBuf { words, len }
    }

    #[inline]
    fn as_slice(&self) -> &[u8] {
        // SAFETY: the word buffer holds at least `len` initialized bytes.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr() as *const u8, self.len) }
    }
}

#[derive(Debug)]
enum Backing {
    Mapped(memmap2::Mmap),
    Owned(AlignedBuf),
}

impl Backing {
    #[inline]
    fn bytes(&self) -> &[u8] {
        match self {
            Backing::Mapped(m) => m.as_slice(),
            Backing::Owned(b) => b.as_slice(),
        }
    }
}

/// A v3 snapshot opened for zero-copy reading, with lazy per-section
/// checksum + structural validation.
///
/// ```
/// use scpm_graph::figure1::figure1;
/// use scpm_graph::snapshot::{encode, MappedSnapshot};
///
/// let g = figure1();
/// let snap = MappedSnapshot::from_bytes(&encode(&g)).unwrap();
/// assert_eq!(snap.num_vertices(), g.num_vertices());
/// assert_eq!(snap.neighbors(0).unwrap(), g.graph().neighbors(0));
/// ```
#[derive(Debug)]
pub struct MappedSnapshot {
    backing: Backing,
    counts: Counts,
    lay: Layout,
    dir: [DirEntry; layout::SECTION_COUNT],
    /// Lazy per-section validation results, fixed after first touch.
    checks: [OnceLock<Result<(), SnapshotError>>; layout::SECTION_COUNT],
    /// Byte spans of each attribute name within the interner section,
    /// built on first name lookup (after the interner validates).
    name_spans: OnceLock<Vec<(usize, usize)>>,
    /// Big-endian fallback: per-section converted vectors.
    #[cfg(not(target_endian = "little"))]
    be_u64: [OnceLock<Vec<u64>>; layout::SECTION_COUNT],
    #[cfg(not(target_endian = "little"))]
    be_u32: [OnceLock<Vec<u32>>; layout::SECTION_COUNT],
}

impl MappedSnapshot {
    /// Opens a snapshot file for zero-copy reading.
    ///
    /// v3 files are memory-mapped and only the header + directory are
    /// validated up front. v2 files are heap-converted (decoded and
    /// re-encoded as v3 into an aligned buffer) so every caller sees the
    /// v3 accessor surface.
    pub fn open(path: impl AsRef<Path>) -> Result<MappedSnapshot, SnapshotError> {
        let file = File::open(path)?;
        // SAFETY: snapshot files are written atomically (temp + rename)
        // and never mutated in place, so the mapping cannot be truncated
        // or rewritten underneath us by well-behaved tooling.
        let map = unsafe { memmap2::Mmap::map(&file)? };
        match Self::version_of(map.as_slice())? {
            VERSION_V2 => {
                let graph = super::decode(map.as_slice())?;
                Self::from_aligned(AlignedBuf::from_bytes(&super::encode(&graph)))
            }
            _ => {
                if !(map.as_slice().as_ptr() as usize).is_multiple_of(8) {
                    // Defensive: no mmap implementation returns unaligned
                    // bases, but the owned fallback costs only a copy.
                    return Self::from_aligned(AlignedBuf::from_bytes(map.as_slice()));
                }
                Self::from_backing(Backing::Mapped(map))
            }
        }
    }

    /// Builds a mapped snapshot from an in-memory buffer (copied into an
    /// aligned heap backing). Accepts v2 buffers via the same
    /// heap-conversion fallback as [`MappedSnapshot::open`].
    pub fn from_bytes(data: impl AsRef<[u8]>) -> Result<MappedSnapshot, SnapshotError> {
        let data = data.as_ref();
        match Self::version_of(data)? {
            VERSION_V2 => {
                let graph = super::decode(data)?;
                Self::from_aligned(AlignedBuf::from_bytes(&super::encode(&graph)))
            }
            _ => Self::from_aligned(AlignedBuf::from_bytes(data)),
        }
    }

    fn version_of(data: &[u8]) -> Result<u32, SnapshotError> {
        if data.len() < 8 {
            if data == &MAGIC[..data.len()] {
                return Err(SnapshotError::Truncated { reading: "header" });
            }
            return Err(SnapshotError::BadMagic);
        }
        if &data[..8] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        if data.len() < 12 {
            return Err(SnapshotError::Truncated { reading: "header" });
        }
        let version = u32::from_le_bytes(data[8..12].try_into().unwrap());
        match version {
            VERSION | VERSION_V2 => Ok(version),
            v => Err(SnapshotError::BadVersion(v)),
        }
    }

    fn from_aligned(buf: AlignedBuf) -> Result<MappedSnapshot, SnapshotError> {
        Self::from_backing(Backing::Owned(buf))
    }

    fn from_backing(backing: Backing) -> Result<MappedSnapshot, SnapshotError> {
        let (counts, lay, dir) = parse_v3_header(backing.bytes())?;
        Ok(MappedSnapshot {
            backing,
            counts,
            lay,
            dir,
            checks: Default::default(),
            name_spans: OnceLock::new(),
            #[cfg(not(target_endian = "little"))]
            be_u64: Default::default(),
            #[cfg(not(target_endian = "little"))]
            be_u32: Default::default(),
        })
    }

    /// Whether the file was served straight from a memory map (`true`) or
    /// through the owned/converted fallback (`false`).
    pub fn is_zero_copy(&self) -> bool {
        matches!(self.backing, Backing::Mapped(_)) && cfg!(target_endian = "little")
    }

    /// Vertex count `n`.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.counts.n as usize
    }

    /// Undirected edge count `m`.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.counts.m as usize
    }

    /// Attribute count.
    #[inline]
    pub fn num_attributes(&self) -> usize {
        self.counts.a as usize
    }

    /// Vertex-attribute pair count.
    #[inline]
    pub fn num_pairs(&self) -> usize {
        self.counts.pairs as usize
    }

    /// Total snapshot size in bytes.
    #[inline]
    pub fn len_bytes(&self) -> usize {
        self.backing.bytes().len()
    }

    fn raw_section(&self, s: Section) -> &[u8] {
        let e = self.lay.extents[s.index()];
        &self.backing.bytes()[e.offset as usize..(e.offset + e.len) as usize]
    }

    /// Dependencies a section's structural check assumes validated.
    fn deps(s: Section) -> &'static [Section] {
        match s {
            Section::CsrEdges => &[Section::CsrOffsets],
            Section::VertexAttrs => &[Section::AttrOffsets],
            Section::InvVertices => &[
                Section::InvOffsets,
                Section::AttrOffsets,
                Section::VertexAttrs,
            ],
            _ => &[],
        }
    }

    /// Validates `s` (checksum + padding + structure) on first touch;
    /// later touches return the cached verdict.
    pub fn ensure(&self, s: Section) -> Result<(), SnapshotError> {
        for &d in Self::deps(s) {
            self.ensure(d)?;
        }
        self.checks[s.index()]
            .get_or_init(|| {
                check_v3_section(self.backing.bytes(), self.counts, &self.lay, &self.dir, s)
            })
            .clone()
    }

    /// Validates every section (the eager escape hatch; `scpm stats` and
    /// the differential tests use it to front-load all failures).
    pub fn validate(&self) -> Result<(), SnapshotError> {
        for s in SECTIONS {
            self.ensure(s)?;
        }
        Ok(())
    }

    #[cfg(target_endian = "little")]
    fn section_u64(&self, s: Section) -> Result<&[u64], SnapshotError> {
        self.ensure(s)?;
        let bytes = self.raw_section(s);
        debug_assert_eq!(bytes.as_ptr() as usize % 8, 0);
        debug_assert_eq!(bytes.len() % 8, 0);
        // SAFETY: the slice is 8-byte aligned (64-byte-aligned section in
        // an 8-byte-aligned backing), its length is a multiple of 8, and
        // u64 has no invalid bit patterns; little-endian target means the
        // on-disk and in-memory representations coincide.
        Ok(unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u64, bytes.len() / 8) })
    }

    #[cfg(target_endian = "little")]
    fn section_u32(&self, s: Section) -> Result<&[u32], SnapshotError> {
        self.ensure(s)?;
        let bytes = self.raw_section(s);
        debug_assert_eq!(bytes.as_ptr() as usize % 4, 0);
        debug_assert_eq!(bytes.len() % 4, 0);
        // SAFETY: as section_u64, with 4-byte alignment and width.
        Ok(unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const u32, bytes.len() / 4) })
    }

    #[cfg(not(target_endian = "little"))]
    fn section_u64(&self, s: Section) -> Result<&[u64], SnapshotError> {
        self.ensure(s)?;
        Ok(self.be_u64[s.index()].get_or_init(|| {
            let bytes = self.raw_section(s);
            (0..bytes.len() / 8)
                .map(|i| layout::u64_at(bytes, i * 8))
                .collect()
        }))
    }

    #[cfg(not(target_endian = "little"))]
    fn section_u32(&self, s: Section) -> Result<&[u32], SnapshotError> {
        self.ensure(s)?;
        Ok(self.be_u32[s.index()].get_or_init(|| {
            let bytes = self.raw_section(s);
            (0..bytes.len() / 4)
                .map(|i| layout::u32_at(bytes, i * 4))
                .collect()
        }))
    }

    /// The CSR offsets array (`n+1` entries; `offsets[n] == 2m`).
    pub fn csr_offsets(&self) -> Result<&[u64], SnapshotError> {
        self.section_u64(Section::CsrOffsets)
    }

    /// The concatenated sorted neighbor lists (`2m` entries).
    pub fn csr_edges(&self) -> Result<&[u32], SnapshotError> {
        self.section_u32(Section::CsrEdges)
    }

    /// Degree of vertex `v`.
    pub fn degree(&self, v: VertexId) -> Result<usize, SnapshotError> {
        let off = self.csr_offsets()?;
        let v = v as usize;
        Ok((off[v + 1] - off[v]) as usize)
    }

    /// Sorted neighbor list of `v`, zero-copy from the mapping.
    pub fn neighbors(&self, v: VertexId) -> Result<&[VertexId], SnapshotError> {
        let off = self.csr_offsets()?;
        let edges = self.csr_edges()?;
        let v = v as usize;
        Ok(&edges[off[v] as usize..off[v + 1] as usize])
    }

    /// Sorted attribute ids of vertex `v`.
    pub fn attributes_of(&self, v: VertexId) -> Result<&[u32], SnapshotError> {
        let off = self.section_u64(Section::AttrOffsets)?;
        let attrs = self.section_u32(Section::VertexAttrs)?;
        let v = v as usize;
        Ok(&attrs[off[v] as usize..off[v + 1] as usize])
    }

    /// The sorted vertex list carrying attribute `a` (its tidset),
    /// zero-copy from the inverted-index section.
    pub fn vertices_with(&self, a: u32) -> Result<&[VertexId], SnapshotError> {
        let off = self.section_u64(Section::InvOffsets)?;
        let verts = self.section_u32(Section::InvVertices)?;
        let a = a as usize;
        Ok(&verts[off[a] as usize..off[a + 1] as usize])
    }

    /// Support `|V({a})|` of attribute `a` (reads only the offsets
    /// section).
    pub fn support(&self, a: u32) -> Result<usize, SnapshotError> {
        let off = self.section_u64(Section::InvOffsets)?;
        let a = a as usize;
        Ok((off[a + 1] - off[a]) as usize)
    }

    /// Name of attribute `a`, zero-copy from the interner section.
    pub fn attr_name(&self, a: u32) -> Result<&str, SnapshotError> {
        self.ensure(Section::Interner)?;
        let payload = self.raw_section(Section::Interner);
        let spans = self.name_spans.get_or_init(|| {
            layout::check_interner(payload, self.counts.a)
                .expect("interner validated before span index")
        });
        let (s0, e0) = spans[a as usize];
        Ok(std::str::from_utf8(&payload[s0..e0]).expect("interner validated as UTF-8"))
    }

    /// Materializes the full [`AttributedGraph`] (validates everything).
    /// The escape hatch for callers that need the owned representation —
    /// identical to [`super::decode`] on the same bytes.
    pub fn to_graph(&self) -> Result<AttributedGraph, SnapshotError> {
        self.validate()?;
        Ok(materialize_v3(self.backing.bytes(), self.counts, &self.lay))
    }
}

#[cfg(test)]
mod tests {
    use super::super::{encode, encode_v2, fnv1a64};
    use super::*;
    use crate::figure1::figure1;

    fn write_temp(name: &str, bytes: &[u8]) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("scpm_mapped_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(name);
        std::fs::write(&path, bytes).unwrap();
        path
    }

    #[test]
    fn mapped_file_matches_owned_decode() {
        let g = figure1();
        let path = write_temp("fig1_v3.snap", &encode(&g));
        let snap = MappedSnapshot::open(&path).unwrap();
        assert!(snap.is_zero_copy() || !cfg!(target_endian = "little"));
        assert_eq!(snap.num_vertices(), g.num_vertices());
        assert_eq!(snap.num_edges(), g.num_edges());
        assert_eq!(snap.num_attributes(), g.num_attributes());
        for v in g.graph().vertices() {
            assert_eq!(snap.neighbors(v).unwrap(), g.graph().neighbors(v));
            assert_eq!(snap.attributes_of(v).unwrap(), g.attributes_of(v));
            assert_eq!(snap.degree(v).unwrap(), g.graph().degree(v));
        }
        for x in 0..g.num_attributes() as u32 {
            assert_eq!(snap.vertices_with(x).unwrap(), g.vertices_with(x));
            assert_eq!(snap.support(x).unwrap(), g.support(x));
            assert_eq!(snap.attr_name(x).unwrap(), g.attr_name(x));
        }
        let owned = snap.to_graph().unwrap();
        assert_eq!(encode(&owned).as_ref(), encode(&g).as_ref());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn v2_files_heap_convert_on_open() {
        let g = figure1();
        let path = write_temp("fig1_v2.snap", &encode_v2(&g));
        let snap = MappedSnapshot::open(&path).unwrap();
        assert!(!snap.is_zero_copy());
        assert_eq!(snap.num_vertices(), g.num_vertices());
        for v in g.graph().vertices() {
            assert_eq!(snap.neighbors(v).unwrap(), g.graph().neighbors(v));
        }
        assert_eq!(
            encode(&snap.to_graph().unwrap()).as_ref(),
            encode(&g).as_ref()
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn section_validation_is_lazy_and_isolated() {
        // Corrupt one byte inside the interner section payload: opening
        // succeeds (header + directory are intact), the CSR and attribute
        // sections still serve reads, and only touching the interner
        // reports the corruption — on every touch, not just the first.
        let g = figure1();
        let mut raw = encode(&g).to_vec();
        let at = super::super::layout::DIR_OFFSET
            + Section::Interner.index() * super::super::layout::DIR_ENTRY_LEN;
        let off = layout::u64_at(&raw, at + 8) as usize;
        raw[off + 4] ^= 0x40;
        let snap = MappedSnapshot::from_bytes(&raw).unwrap();
        assert_eq!(snap.neighbors(0).unwrap(), g.graph().neighbors(0));
        assert_eq!(snap.vertices_with(0).unwrap(), g.vertices_with(0));
        assert!(matches!(
            snap.attr_name(0),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        assert!(matches!(
            snap.attr_name(0),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
        assert!(snap.to_graph().is_err());
    }

    #[test]
    fn corrupt_header_fails_at_open() {
        let g = figure1();
        let mut raw = encode(&g).to_vec();
        raw[17] ^= 0x01; // inside the n field, covered by the header checksum
        assert!(matches!(
            MappedSnapshot::from_bytes(&raw),
            Err(SnapshotError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn every_section_byte_flip_is_rejected_lazily() {
        // For every byte in every section payload (and the padding before
        // it), a flip must surface as an error from validate() even though
        // open() succeeds. Mirrors the v2 whole-body guarantee.
        let g = figure1();
        let raw = encode(&g).to_vec();
        let first_pad = super::super::layout::HEADER_LEN + super::super::layout::DIR_LEN;
        for off in first_pad..raw.len() {
            let mut bad = raw.clone();
            bad[off] ^= 0x01;
            let snap = MappedSnapshot::from_bytes(&bad).expect("open only checks the header");
            assert!(snap.validate().is_err(), "flip at {off} was accepted");
        }
    }

    #[test]
    fn rejects_foreign_and_stale_inputs() {
        assert!(matches!(
            MappedSnapshot::from_bytes(b"not a snapshot at all"),
            Err(SnapshotError::BadMagic)
        ));
        let mut raw = encode(&figure1()).to_vec();
        raw[8..12].copy_from_slice(&1u32.to_le_bytes());
        assert!(matches!(
            MappedSnapshot::from_bytes(&raw),
            Err(SnapshotError::BadVersion(1))
        ));
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            MappedSnapshot::open("/nonexistent/path/graph.snap"),
            Err(SnapshotError::Io(_))
        ));
    }

    #[test]
    fn fnv_streaming_matches_oneshot() {
        // The external writer hashes sections incrementally; the two
        // forms must agree on arbitrary chunkings.
        let raw = encode(&figure1()).to_vec();
        let mut h = super::super::Fnv1a64::new();
        for chunk in raw.chunks(13) {
            h.update(chunk);
        }
        assert_eq!(h.finish(), fnv1a64(&raw));
    }
}
