//! Versioned, checksummed binary snapshot format for attributed graphs.
//!
//! The synthetic datasets take seconds to generate at bench scale and
//! ingested real datasets take seconds to parse; the harness snapshots
//! them once and reloads in milliseconds. The current format (**version
//! 3**) is a little-endian, *sectioned* layout designed to be readable
//! zero-copy from a memory map: a fixed 64-byte header, a section
//! directory, and seven 64-byte-aligned sections (CSR offsets, CSR edge
//! lists, vertex→attribute table, inverted index, attribute-name
//! interner), each carrying its own FNV-1a 64 checksum in the directory.
//! The byte-exact normative spec lives in [`layout`] and `docs/DATASETS.md`.
//!
//! Two readers share the format:
//!
//! * [`decode`] — the owned-buffer path: validates every section eagerly
//!   and materializes an [`AttributedGraph`]. Still reads **version 2**
//!   files (the pre-mmap, length-prefixed layout) for compatibility; the
//!   dataset cache regenerates them lazily because [`VERSION`] is part of
//!   its fingerprint.
//! * [`MappedSnapshot`] — the zero-copy path: memory-maps the file and
//!   validates checksums *lazily per section*, on first touch, so opening
//!   a multi-gigabyte snapshot costs one header check. v2 files are
//!   heap-converted on open.
//!
//! Decoding is defensive in layers: the magic rejects foreign files, the
//! version dispatches revisions, the header checksum covers the directory
//! (and therefore every section checksum), section checksums reject bit
//! rot, zero-fill verification covers the alignment padding, and the
//! structural pass re-checks every length and id range anyway (defense in
//! depth: a file with a *forged* checksum still cannot make the decoder
//! panic). Failures return a [`SnapshotError`]; the failure-injection
//! tests feed truncated and corrupted buffers through both readers.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::path::Path;

use crate::attributed::{AttributedGraph, AttributedGraphBuilder};
use crate::csr::CsrGraph;

pub mod layout;
mod mapped;

pub use mapped::MappedSnapshot;

use layout::{Counts, Layout, Section, DIR_ENTRY_LEN, DIR_LEN, DIR_OFFSET, HEADER_LEN, SECTIONS};

/// The 8-byte file magic every snapshot version starts with.
pub const MAGIC: &[u8; 8] = b"SCPMSNAP";

/// Current snapshot format version. Version 2 (the pre-mmap layout) is
/// still readable through the compatibility decoder; version 1
/// (unchecksummed) is not, and decoding it fails with
/// [`SnapshotError::BadVersion`] so callers (the dataset cache,
/// `scpm ingest`) regenerate.
pub const VERSION: u32 = 3;

/// The previous snapshot version, readable but no longer written.
pub const VERSION_V2: u32 = 2;

/// Streaming FNV-1a 64-bit hasher — the snapshot checksum function in
/// incremental form, used by the external (bounded-memory) ingest writer
/// to checksum sections while spooling them to disk.
///
/// ```
/// use scpm_graph::snapshot::{fnv1a64, Fnv1a64};
/// let mut h = Fnv1a64::new();
/// h.update(b"sc");
/// h.update(b"pm");
/// assert_eq!(h.finish(), fnv1a64(b"scpm"));
/// ```
#[derive(Clone, Debug)]
pub struct Fnv1a64 {
    h: u64,
}

impl Fnv1a64 {
    /// A fresh hasher (FNV offset basis).
    pub fn new() -> Self {
        Fnv1a64 {
            h: 0xcbf2_9ce4_8422_2325,
        }
    }

    /// Feeds `bytes` into the hash.
    #[inline]
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.h;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.h = h;
    }

    /// The hash of everything fed so far.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.h
    }
}

impl Default for Fnv1a64 {
    fn default() -> Self {
        Fnv1a64::new()
    }
}

/// FNV-1a 64-bit hash — the snapshot checksum function, also used by the
/// dataset cache to fingerprint source files.
///
/// ```
/// use scpm_graph::snapshot::fnv1a64;
/// assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
/// assert_ne!(fnv1a64(b"scpm"), fnv1a64(b"scpn"));
/// ```
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = Fnv1a64::new();
    h.update(bytes);
    h.finish()
}

/// Errors produced while decoding a snapshot.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer does not start with the snapshot magic (a foreign file).
    BadMagic,
    /// Unsupported format version (a stale file from another revision).
    BadVersion(u32),
    /// A stored checksum does not match the content (whole-body for v2,
    /// per-section or header for v3).
    ChecksumMismatch {
        /// Checksum stored in the file.
        stored: u64,
        /// Checksum recomputed over the content.
        computed: u64,
    },
    /// The buffer ended before the declared content.
    Truncated {
        /// What the decoder was reading.
        reading: &'static str,
    },
    /// Bytes remain after the declared content (corrupt or concatenated).
    TrailingData {
        /// Number of unconsumed payload bytes.
        bytes: usize,
    },
    /// An id exceeded its declared range, or a structural invariant
    /// (sortedness, symmetry, transpose consistency, zeroed padding) broke.
    OutOfRange {
        /// What the decoder was reading.
        reading: &'static str,
        /// The offending value.
        value: u64,
    },
    /// An attribute name was not valid UTF-8.
    BadName,
    /// Underlying I/O failure (file variants only).
    Io(std::io::ErrorKind),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a scpm snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => write!(
                f,
                "unsupported snapshot version {v} (this build reads versions {VERSION_V2} and {VERSION})"
            ),
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "snapshot checksum mismatch (stored {stored:#018x}, computed {computed:#018x})"
            ),
            SnapshotError::Truncated { reading } => {
                write!(f, "snapshot truncated while reading {reading}")
            }
            SnapshotError::TrailingData { bytes } => {
                write!(
                    f,
                    "snapshot has {bytes} trailing bytes after declared content"
                )
            }
            SnapshotError::OutOfRange { reading, value } => {
                write!(f, "snapshot {reading} value {value} out of range")
            }
            SnapshotError::BadName => write!(f, "attribute name is not valid UTF-8"),
            SnapshotError::Io(kind) => write!(f, "i/o error: {kind:?}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e.kind())
    }
}

/// One parsed directory entry of a v3 snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct DirEntry {
    pub(crate) offset: u64,
    pub(crate) len: u64,
    pub(crate) checksum: u64,
}

/// Total interner payload length for a graph (`Σ (4 + name_len)`).
fn interner_len(g: &AttributedGraph) -> u64 {
    (0..g.num_attributes() as u32)
        .map(|x| 4 + g.attr_name(x).len() as u64)
        .sum()
}

/// Encodes an attributed graph into a **v3** snapshot buffer.
pub fn encode(g: &AttributedGraph) -> Bytes {
    let n = g.num_vertices();
    let a = g.num_attributes();
    let counts = Counts {
        n: n as u64,
        m: g.num_edges() as u64,
        a: a as u64,
        pairs: (0..n as u32).map(|v| g.attributes_of(v).len() as u64).sum(),
    };
    let lay = layout::layout(counts, interner_len(g));
    let mut buf = BytesMut::with_capacity(lay.total_len as usize);

    // Header with a checksum placeholder, patched at the end.
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u32_le(layout::SECTION_COUNT as u32);
    buf.put_u64_le(counts.n);
    buf.put_u64_le(counts.m);
    buf.put_u64_le(counts.a);
    buf.put_u64_le(counts.pairs);
    buf.put_u64_le(lay.total_len);
    buf.put_u64_le(0); // header checksum placeholder

    // Directory with checksum placeholders, patched after the sections.
    for s in SECTIONS {
        let e = lay.extents[s.index()];
        buf.put_u32_le(s as u32);
        buf.put_u32_le(0); // reserved
        buf.put_u64_le(e.offset);
        buf.put_u64_le(e.len);
        buf.put_u64_le(0); // section checksum placeholder
    }
    debug_assert_eq!(buf.len(), HEADER_LEN + DIR_LEN);

    let mut checksums = [0u64; layout::SECTION_COUNT];
    for s in SECTIONS {
        let e = lay.extents[s.index()];
        buf.resize(e.offset as usize, 0); // zero-fill alignment padding
        match s {
            Section::CsrOffsets => {
                let mut off = 0u64;
                buf.put_u64_le(0);
                for v in 0..n as u32 {
                    off += g.graph().degree(v) as u64;
                    buf.put_u64_le(off);
                }
            }
            Section::CsrEdges => {
                for v in 0..n as u32 {
                    for &u in g.graph().neighbors(v) {
                        buf.put_u32_le(u);
                    }
                }
            }
            Section::AttrOffsets => {
                let mut off = 0u64;
                buf.put_u64_le(0);
                for v in 0..n as u32 {
                    off += g.attributes_of(v).len() as u64;
                    buf.put_u64_le(off);
                }
            }
            Section::VertexAttrs => {
                for v in 0..n as u32 {
                    for &x in g.attributes_of(v) {
                        buf.put_u32_le(x);
                    }
                }
            }
            Section::InvOffsets => {
                let mut off = 0u64;
                buf.put_u64_le(0);
                for x in 0..a as u32 {
                    off += g.support(x) as u64;
                    buf.put_u64_le(off);
                }
            }
            Section::InvVertices => {
                for x in 0..a as u32 {
                    for &v in g.vertices_with(x) {
                        buf.put_u32_le(v);
                    }
                }
            }
            Section::Interner => {
                for x in 0..a as u32 {
                    let name = g.attr_name(x).as_bytes();
                    buf.put_u32_le(name.len() as u32);
                    buf.put_slice(name);
                }
            }
        }
        debug_assert_eq!(buf.len() as u64, e.offset + e.len, "{}", s.name());
        checksums[s.index()] = fnv1a64(&buf[e.offset as usize..]);
    }
    debug_assert_eq!(buf.len() as u64, lay.total_len);

    // Patch section checksums into the directory, then the header checksum
    // over header + directory.
    for s in SECTIONS {
        let at = DIR_OFFSET + s.index() * DIR_ENTRY_LEN + 24;
        buf[at..at + 8].copy_from_slice(&checksums[s.index()].to_le_bytes());
    }
    let header_sum = header_checksum(&buf);
    let at = layout::HEADER_CHECKSUM_OFFSET;
    buf[at..at + 8].copy_from_slice(&header_sum.to_le_bytes());
    buf.freeze()
}

/// The v3 header checksum: FNV-1a 64 over the header bytes before the
/// checksum field, then the whole directory.
pub(crate) fn header_checksum(data: &[u8]) -> u64 {
    let mut h = Fnv1a64::new();
    h.update(&data[..layout::HEADER_CHECKSUM_OFFSET]);
    h.update(&data[DIR_OFFSET..DIR_OFFSET + DIR_LEN]);
    h.finish()
}

/// Encodes an attributed graph into the legacy **v2** snapshot layout
/// (length-prefixed body behind a whole-body trailing checksum). Kept so
/// compatibility and corruption tests can manufacture real v2 files;
/// nothing writes v2 in production anymore.
pub fn encode_v2(g: &AttributedGraph) -> Bytes {
    let n = g.num_vertices();
    let m = g.num_edges();
    let a = g.num_attributes();
    let pairs: usize = (0..n as u32).map(|v| g.attributes_of(v).len()).sum();

    let name_bytes: usize = (0..a as u32).map(|x| g.attr_name(x).len() + 4).sum();
    let mut buf = BytesMut::with_capacity(8 + 4 + 8 * 5 + m * 8 + name_bytes + pairs * 8);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION_V2);
    buf.put_u64_le(n as u64);
    buf.put_u64_le(m as u64);
    for (u, v) in g.graph().edges() {
        buf.put_u32_le(u);
        buf.put_u32_le(v);
    }
    buf.put_u64_le(a as u64);
    for x in 0..a as u32 {
        let name = g.attr_name(x).as_bytes();
        buf.put_u32_le(name.len() as u32);
        buf.put_slice(name);
    }
    buf.put_u64_le(pairs as u64);
    for v in 0..n as u32 {
        for &x in g.attributes_of(v) {
            buf.put_u32_le(v);
            buf.put_u32_le(x);
        }
    }
    let checksum = fnv1a64(buf.as_ref());
    buf.put_u64_le(checksum);
    buf.freeze()
}

fn need(buf: &impl Buf, bytes: usize, reading: &'static str) -> Result<(), SnapshotError> {
    if buf.remaining() < bytes {
        Err(SnapshotError::Truncated { reading })
    } else {
        Ok(())
    }
}

/// Decodes a snapshot buffer into an attributed graph.
///
/// Dispatches on the version word: v3 files run the sectioned validation
/// (header checksum, per-section checksums, padding zero-fill, structural
/// pass), v2 files run the legacy whole-body path. Checks run outside-in
/// either way; a forged checksum cannot make the decoder panic.
///
/// ```
/// use scpm_graph::snapshot::{decode, encode};
/// use scpm_graph::figure1::figure1;
///
/// let g = figure1();
/// let bytes = encode(&g);
/// let g2 = decode(&bytes).unwrap();
/// assert_eq!(g2.num_vertices(), g.num_vertices());
/// assert_eq!(g2.num_edges(), g.num_edges());
/// ```
pub fn decode(data: impl AsRef<[u8]>) -> Result<AttributedGraph, SnapshotError> {
    let data = data.as_ref();
    if data.len() < 8 {
        // Too short to even carry the magic: classify by what we can see.
        if data == &MAGIC[..data.len()] {
            return Err(SnapshotError::Truncated { reading: "header" });
        }
        return Err(SnapshotError::BadMagic);
    }
    if &data[..8] != MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    if data.len() < 12 {
        return Err(SnapshotError::Truncated { reading: "header" });
    }
    let version = u32::from_le_bytes(data[8..12].try_into().unwrap());
    match version {
        VERSION_V2 => decode_v2(data),
        VERSION => decode_v3(data),
        v => Err(SnapshotError::BadVersion(v)),
    }
}

/// The v3 owned-buffer decoder: every section validated eagerly (but still
/// independently, so corruption reports name the failing layer), then the
/// graph is materialized without re-sorting anything.
fn decode_v3(data: &[u8]) -> Result<AttributedGraph, SnapshotError> {
    let (counts, lay, dir) = parse_v3_header(data)?;
    for s in SECTIONS {
        check_v3_section(data, counts, &lay, &dir, s)?;
    }
    Ok(materialize_v3(data, counts, &lay))
}

/// Parses and verifies a v3 header + directory: length, section count,
/// header checksum (which covers the directory and therefore every section
/// checksum), declared-vs-actual total length, and directory consistency
/// with the canonical layout.
pub(crate) fn parse_v3_header(
    data: &[u8],
) -> Result<(Counts, Layout, [DirEntry; layout::SECTION_COUNT]), SnapshotError> {
    if data.len() < HEADER_LEN {
        return Err(SnapshotError::Truncated { reading: "header" });
    }
    let section_count = layout::u32_at(data, 12);
    if section_count as usize != layout::SECTION_COUNT {
        return Err(SnapshotError::OutOfRange {
            reading: "section count",
            value: section_count as u64,
        });
    }
    if data.len() < HEADER_LEN + DIR_LEN {
        return Err(SnapshotError::Truncated {
            reading: "section directory",
        });
    }
    let stored = layout::u64_at(data, layout::HEADER_CHECKSUM_OFFSET);
    let computed = header_checksum(data);
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch { stored, computed });
    }
    let counts = Counts {
        n: layout::u64_at(data, 16),
        m: layout::u64_at(data, 24),
        a: layout::u64_at(data, 32),
        pairs: layout::u64_at(data, 40),
    };
    if counts.n > u32::MAX as u64 {
        return Err(SnapshotError::OutOfRange {
            reading: "vertex count",
            value: counts.n,
        });
    }
    if counts.a > u32::MAX as u64 {
        return Err(SnapshotError::OutOfRange {
            reading: "attribute count",
            value: counts.a,
        });
    }
    // Bound m and pairs so the layout arithmetic below cannot overflow;
    // the exact total-length check makes tighter bounds redundant.
    if counts.m > u64::MAX / 16 || counts.pairs > u64::MAX / 16 {
        return Err(SnapshotError::OutOfRange {
            reading: "edge or pair count",
            value: counts.m.max(counts.pairs),
        });
    }
    let total_len = layout::u64_at(data, 48);
    if (data.len() as u64) < total_len {
        return Err(SnapshotError::Truncated {
            reading: "sections",
        });
    }
    if data.len() as u64 > total_len {
        return Err(SnapshotError::TrailingData {
            bytes: data.len() - total_len as usize,
        });
    }

    let mut dir = [DirEntry {
        offset: 0,
        len: 0,
        checksum: 0,
    }; layout::SECTION_COUNT];
    for s in SECTIONS {
        let at = DIR_OFFSET + s.index() * DIR_ENTRY_LEN;
        let id = layout::u32_at(data, at);
        let reserved = layout::u32_at(data, at + 4);
        if id != s as u32 || reserved != 0 {
            return Err(SnapshotError::OutOfRange {
                reading: "directory entry",
                value: id as u64,
            });
        }
        dir[s.index()] = DirEntry {
            offset: layout::u64_at(data, at + 8),
            len: layout::u64_at(data, at + 16),
            checksum: layout::u64_at(data, at + 24),
        };
    }
    // The directory must agree with the canonical layout derived from the
    // header counts (the interner's length is the one degree of freedom
    // the directory contributes).
    let lay = layout::layout(counts, dir[Section::Interner.index()].len);
    if lay.total_len != total_len {
        return Err(SnapshotError::OutOfRange {
            reading: "total length",
            value: total_len,
        });
    }
    for s in SECTIONS {
        let (e, d) = (lay.extents[s.index()], dir[s.index()]);
        if d.offset != e.offset || d.len != e.len {
            return Err(SnapshotError::OutOfRange {
                reading: "directory extent",
                value: d.offset,
            });
        }
    }
    Ok((counts, lay, dir))
}

/// Validates one v3 section: the zero-filled padding run preceding it, its
/// FNV-1a checksum, and its structural invariants. Sections with
/// structural dependencies ([`Section::CsrEdges`] on the CSR offsets,
/// [`Section::VertexAttrs`] on the attribute offsets,
/// [`Section::InvVertices`] on the other attribute sections) assume their
/// dependencies were validated first — both readers validate along
/// dependency edges before touching a section.
pub(crate) fn check_v3_section(
    data: &[u8],
    counts: Counts,
    lay: &Layout,
    dir: &[DirEntry; layout::SECTION_COUNT],
    s: Section,
) -> Result<(), SnapshotError> {
    let e = lay.extents[s.index()];
    for at in e.pad_start..e.offset {
        if data[at as usize] != 0 {
            return Err(SnapshotError::OutOfRange {
                reading: "padding byte",
                value: at,
            });
        }
    }
    let payload = &data[e.offset as usize..(e.offset + e.len) as usize];
    let computed = fnv1a64(payload);
    let stored = dir[s.index()].checksum;
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch { stored, computed });
    }
    let section = |s: Section| {
        let e = lay.extents[s.index()];
        &data[e.offset as usize..(e.offset + e.len) as usize]
    };
    match s {
        Section::CsrOffsets => {
            layout::check_offsets(payload, counts.n, counts.m * 2, "csr offset")?
        }
        Section::CsrEdges => {
            layout::check_grouped_ids(
                payload,
                section(Section::CsrOffsets),
                counts.n,
                counts.n,
                true,
                "edge endpoint",
            )?;
            layout::check_edge_symmetry(payload, section(Section::CsrOffsets), counts.n)?;
        }
        Section::AttrOffsets => {
            layout::check_offsets(payload, counts.n, counts.pairs, "attr offset")?
        }
        Section::VertexAttrs => layout::check_grouped_ids(
            payload,
            section(Section::AttrOffsets),
            counts.n,
            counts.a,
            false,
            "pair attribute",
        )?,
        Section::InvOffsets => {
            layout::check_offsets(payload, counts.a, counts.pairs, "inverted offset")?
        }
        Section::InvVertices => {
            layout::check_grouped_ids(
                payload,
                section(Section::InvOffsets),
                counts.a,
                counts.n,
                false,
                "pair vertex",
            )?;
            layout::check_inverted_transpose(
                section(Section::AttrOffsets),
                section(Section::VertexAttrs),
                section(Section::InvOffsets),
                payload,
                counts.n,
                counts.a,
            )?;
        }
        Section::Interner => {
            layout::check_interner(payload, counts.a)?;
        }
    }
    Ok(())
}

/// Materializes an [`AttributedGraph`] from fully-validated v3 sections.
/// No re-sorting, no re-deduplication: the sections already hold the
/// canonical CSR arrays, so this is a straight copy.
pub(crate) fn materialize_v3(data: &[u8], counts: Counts, lay: &Layout) -> AttributedGraph {
    let section = |s: Section| {
        let e = lay.extents[s.index()];
        &data[e.offset as usize..(e.offset + e.len) as usize]
    };
    let (n, a) = (counts.n as usize, counts.a as usize);

    let csr_off = section(Section::CsrOffsets);
    let offsets: Vec<usize> = (0..=n)
        .map(|i| layout::u64_at(csr_off, i * 8) as usize)
        .collect();
    let edges_raw = section(Section::CsrEdges);
    let neighbors: Vec<u32> = (0..counts.m as usize * 2)
        .map(|i| layout::u32_at(edges_raw, i * 4))
        .collect();
    let graph = CsrGraph::from_parts(offsets, neighbors);

    let attr_off_raw = section(Section::AttrOffsets);
    let attr_offsets: Vec<usize> = (0..=n)
        .map(|i| layout::u64_at(attr_off_raw, i * 8) as usize)
        .collect();
    let va_raw = section(Section::VertexAttrs);
    let vertex_attrs: Vec<u32> = (0..counts.pairs as usize)
        .map(|i| layout::u32_at(va_raw, i * 4))
        .collect();

    let inv_off = section(Section::InvOffsets);
    let iv_raw = section(Section::InvVertices);
    let attr_vertices: Vec<Vec<u32>> = (0..a)
        .map(|x| {
            let (s0, e0) = (
                layout::u64_at(inv_off, x * 8) as usize,
                layout::u64_at(inv_off, (x + 1) * 8) as usize,
            );
            (s0..e0).map(|i| layout::u32_at(iv_raw, i * 4)).collect()
        })
        .collect();

    let spans = layout::check_interner(section(Section::Interner), counts.a)
        .expect("interner validated before materialization");
    let interner = section(Section::Interner);
    let attr_names: Vec<String> = spans
        .iter()
        .map(|&(s0, e0)| std::str::from_utf8(&interner[s0..e0]).unwrap().to_string())
        .collect();

    AttributedGraph::from_csr_parts(graph, attr_offsets, vertex_attrs, attr_vertices, attr_names)
}

/// The legacy v2 decoder: whole-body checksum up front, then the
/// structural pass rebuilds the graph through the builder.
fn decode_v2(data: &[u8]) -> Result<AttributedGraph, SnapshotError> {
    if data.len() < 12 + 8 {
        return Err(SnapshotError::Truncated {
            reading: "checksum",
        });
    }
    let body = &data[..data.len() - 8];
    let stored = u64::from_le_bytes(data[data.len() - 8..].try_into().unwrap());
    let computed = fnv1a64(body);
    if stored != computed {
        return Err(SnapshotError::ChecksumMismatch { stored, computed });
    }

    let mut buf: &[u8] = &body[12..];
    need(&buf, 8, "vertex count")?;
    let n = buf.get_u64_le();
    if n > u32::MAX as u64 {
        return Err(SnapshotError::OutOfRange {
            reading: "vertex count",
            value: n,
        });
    }
    let mut b = AttributedGraphBuilder::new(n as usize);

    need(&buf, 8, "edge count")?;
    let m = buf.get_u64_le();
    for _ in 0..m {
        need(&buf, 8, "edge")?;
        let u = buf.get_u32_le();
        let v = buf.get_u32_le();
        if u as u64 >= n || v as u64 >= n {
            return Err(SnapshotError::OutOfRange {
                reading: "edge endpoint",
                value: u.max(v) as u64,
            });
        }
        b.add_edge(u, v);
    }

    need(&buf, 8, "attribute count")?;
    let a = buf.get_u64_le();
    if a > u32::MAX as u64 {
        return Err(SnapshotError::OutOfRange {
            reading: "attribute count",
            value: a,
        });
    }
    for i in 0..a {
        need(&buf, 4, "attribute name length")?;
        let len = buf.get_u32_le() as usize;
        need(&buf, len, "attribute name")?;
        let mut raw = vec![0u8; len];
        buf.copy_to_slice(&mut raw);
        let name = String::from_utf8(raw).map_err(|_| SnapshotError::BadName)?;
        let id = b.intern_attr(&name);
        if id as u64 != i {
            // Duplicate names collapse ids and would desynchronize the
            // pair section; treat as corruption.
            return Err(SnapshotError::OutOfRange {
                reading: "duplicate attribute name",
                value: i,
            });
        }
    }

    need(&buf, 8, "pair count")?;
    let pairs = buf.get_u64_le();
    for _ in 0..pairs {
        need(&buf, 8, "vertex-attribute pair")?;
        let v = buf.get_u32_le();
        let x = buf.get_u32_le();
        if v as u64 >= n {
            return Err(SnapshotError::OutOfRange {
                reading: "pair vertex",
                value: v as u64,
            });
        }
        if x as u64 >= a {
            return Err(SnapshotError::OutOfRange {
                reading: "pair attribute",
                value: x as u64,
            });
        }
        b.add_attr(v, x);
    }
    if buf.remaining() != 0 {
        return Err(SnapshotError::TrailingData {
            bytes: buf.remaining(),
        });
    }
    Ok(b.build())
}

/// Writes a snapshot to a file atomically (alias for
/// [`write_snapshot_atomic`]; kept as the historical name every ingest
/// path calls).
pub fn save_snapshot(g: &AttributedGraph, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
    write_snapshot_atomic(g, path)
}

/// Writes a snapshot via the atomic protocol: encode, write a temp file
/// in the target directory, fsync, rename over the target. A crash at
/// any point leaves either the complete old snapshot or the complete
/// new one — `scpm update` style overwrite-in-place can no longer lose
/// the *old* graph to a torn write.
pub fn write_snapshot_atomic(
    g: &AttributedGraph,
    path: impl AsRef<Path>,
) -> Result<(), SnapshotError> {
    write_snapshot_atomic_with(&crate::fault::FaultInjector::none(), g, path.as_ref())
}

/// [`write_snapshot_atomic`] with fault injection over the four
/// durability operations (create, write, sync, rename).
pub fn write_snapshot_atomic_with(
    inj: &crate::fault::FaultInjector,
    g: &AttributedGraph,
    path: &Path,
) -> Result<(), SnapshotError> {
    crate::fault::write_atomic_with(inj, path, &encode(g))?;
    Ok(())
}

/// Loads a snapshot from a file.
pub fn load_snapshot(path: impl AsRef<Path>) -> Result<AttributedGraph, SnapshotError> {
    let data = std::fs::read(path)?;
    decode(Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::figure1::figure1;

    /// Recomputes a v2 buffer's trailing checksum after a test patched the
    /// body — lets tests reach the structural validation layer behind it.
    fn reseal_v2(mut raw: Vec<u8>) -> Vec<u8> {
        let body = raw.len() - 8;
        let sum = fnv1a64(&raw[..body]).to_le_bytes();
        raw[body..].copy_from_slice(&sum);
        raw
    }

    /// Recomputes every v3 checksum (sections, then header) after a test
    /// patched payload bytes — lets tests reach the structural layer.
    fn reseal_v3(mut raw: Vec<u8>) -> Vec<u8> {
        for i in 0..layout::SECTION_COUNT {
            let at = DIR_OFFSET + i * DIR_ENTRY_LEN;
            let off = layout::u64_at(&raw, at + 8) as usize;
            let len = layout::u64_at(&raw, at + 16) as usize;
            let sum = fnv1a64(&raw[off..off + len]).to_le_bytes();
            raw[at + 24..at + 32].copy_from_slice(&sum);
        }
        let sum = header_checksum(&raw).to_le_bytes();
        let at = layout::HEADER_CHECKSUM_OFFSET;
        raw[at..at + 8].copy_from_slice(&sum);
        raw
    }

    fn extent(raw: &[u8], s: Section) -> (usize, usize) {
        let at = DIR_OFFSET + s.index() * DIR_ENTRY_LEN;
        (
            layout::u64_at(raw, at + 8) as usize,
            layout::u64_at(raw, at + 16) as usize,
        )
    }

    fn equivalent(a: &AttributedGraph, b: &AttributedGraph) -> bool {
        if a.num_vertices() != b.num_vertices()
            || a.num_edges() != b.num_edges()
            || a.num_attributes() != b.num_attributes()
        {
            return false;
        }
        for (u, v) in a.graph().edges() {
            if !b.graph().has_edge(u, v) {
                return false;
            }
        }
        for v in a.graph().vertices() {
            let na: Vec<&str> = a.attributes_of(v).iter().map(|&x| a.attr_name(x)).collect();
            let nb: Vec<&str> = b.attributes_of(v).iter().map(|&x| b.attr_name(x)).collect();
            let (mut sa, mut sb) = (na.clone(), nb.clone());
            sa.sort_unstable();
            sb.sort_unstable();
            if sa != sb {
                return false;
            }
        }
        true
    }

    #[test]
    fn roundtrip_figure1() {
        let g = figure1();
        let buf = encode(&g);
        let g2 = decode(buf).unwrap();
        assert!(equivalent(&g, &g2));
    }

    #[test]
    fn roundtrip_preserves_exact_tables() {
        // The v3 materializer copies CSR arrays verbatim; ids and orders
        // must survive exactly, not just up to equivalence.
        let g = figure1();
        let g2 = decode(encode(&g)).unwrap();
        for v in g.graph().vertices() {
            assert_eq!(g.graph().neighbors(v), g2.graph().neighbors(v));
            assert_eq!(g.attributes_of(v), g2.attributes_of(v));
        }
        for x in 0..g.num_attributes() as u32 {
            assert_eq!(g.vertices_with(x), g2.vertices_with(x));
            assert_eq!(g.attr_name(x), g2.attr_name(x));
        }
    }

    #[test]
    fn roundtrip_empty_graph() {
        let g = AttributedGraphBuilder::new(0).build();
        let g2 = decode(encode(&g)).unwrap();
        assert_eq!(g2.num_vertices(), 0);
        assert_eq!(g2.num_attributes(), 0);
    }

    #[test]
    fn encoding_is_deterministic() {
        let g = figure1();
        assert_eq!(encode(&g).as_ref(), encode(&g).as_ref());
    }

    #[test]
    fn v3_sections_are_aligned() {
        let raw = encode(&figure1()).to_vec();
        for s in SECTIONS {
            let (off, _) = extent(&raw, s);
            assert_eq!(off % layout::ALIGN, 0, "{} misaligned", s.name());
        }
    }

    #[test]
    fn reads_legacy_v2_files() {
        let g = figure1();
        let raw = encode_v2(&g).to_vec();
        let g2 = decode(&raw).unwrap();
        assert!(equivalent(&g, &g2));
    }

    #[test]
    fn v2_and_v3_decode_to_identical_tables() {
        // The two decoders normalize to the same canonical in-memory form,
        // so re-encoding a decoded v2 file is byte-identical to encoding
        // the original graph.
        let g = figure1();
        let via_v2 = decode(encode_v2(&g)).unwrap();
        assert_eq!(encode(&via_v2).as_ref(), encode(&g).as_ref());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut raw = encode(&figure1()).to_vec();
        raw[0] = b'X';
        assert!(matches!(decode(raw), Err(SnapshotError::BadMagic)));
    }

    #[test]
    fn rejects_foreign_files() {
        for foreign in [
            &b"PK\x03\x04 this is a zip, honest"[..],
            &b"{\"json\": true, \"padding\": \"padding padding\"}"[..],
            &b"v 3\ne 0 1\ne 1 2\na 0 red blue\n"[..],
            &[0u8; 64][..],
        ] {
            assert!(
                matches!(decode(foreign), Err(SnapshotError::BadMagic)),
                "foreign input accepted: {foreign:?}"
            );
        }
    }

    #[test]
    fn rejects_stale_version_1() {
        // A version-1 header (what pre-checksum snapshots carried).
        let mut raw = encode(&figure1()).to_vec();
        raw[8..12].copy_from_slice(&1u32.to_le_bytes());
        assert!(matches!(decode(raw), Err(SnapshotError::BadVersion(1))));
    }

    #[test]
    fn rejects_future_version() {
        let mut raw = encode(&figure1()).to_vec();
        raw[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(decode(raw), Err(SnapshotError::BadVersion(99))));
    }

    #[test]
    fn bit_flips_anywhere_fail_a_checksum_or_check() {
        let raw = encode(&figure1()).to_vec();
        // Flip one bit at a sample of offsets past the version word: the
        // header checksum, a section checksum, or the padding zero-fill
        // check must catch every one of them.
        for off in (12..raw.len()).step_by(7) {
            let mut bad = raw.clone();
            bad[off] ^= 0x10;
            assert!(decode(&bad).is_err(), "flip at {off} not caught");
        }
    }

    #[test]
    fn rejects_truncation_at_every_length() {
        let raw = encode(&figure1()).to_vec();
        // Any strict prefix must fail (never panic): short prefixes as
        // magic/header truncation, longer ones via the total-length check.
        for cut in 0..raw.len() {
            let r = decode(&raw[..cut]);
            assert!(
                matches!(
                    r,
                    Err(SnapshotError::Truncated { .. })
                        | Err(SnapshotError::BadMagic)
                        | Err(SnapshotError::ChecksumMismatch { .. })
                ),
                "cut at {cut} gave {r:?}"
            );
        }
    }

    #[test]
    fn single_byte_flips_at_every_offset_fail_cleanly() {
        // A flip at EVERY byte offset (header, directory, padding,
        // sections) must return a clean SnapshotError — never a panic,
        // never a silent accept. This is the exact coverage the v2
        // whole-body checksum gave, re-proven for the per-section scheme.
        let raw = encode(&figure1()).to_vec();
        for off in 0..raw.len() {
            let mut bad = raw.clone();
            bad[off] ^= 0x01;
            let r = decode(&bad);
            assert!(r.is_err(), "flip at {off} was accepted");
        }
    }

    #[test]
    fn v2_single_byte_flips_still_fail_cleanly() {
        let raw = encode_v2(&figure1()).to_vec();
        for off in 0..raw.len() {
            let mut bad = raw.clone();
            bad[off] ^= 0x01;
            assert!(decode(&bad).is_err(), "v2 flip at {off} was accepted");
        }
    }

    #[test]
    fn atomic_write_survives_injected_faults_without_tearing() {
        use crate::fault::{FaultInjector, FaultMode, FaultPlan};
        let g = figure1();
        let dir = std::env::temp_dir().join("scpm_snapshot_atomic_test");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.snap");
        save_snapshot(&g, &path).unwrap();
        let before = std::fs::read(&path).unwrap();
        // Grow the graph so the new snapshot differs, then fail every
        // durability op in turn: the file must always read back as the
        // complete old snapshot.
        let g2 = crate::delta::GraphDelta::parse("v 1\ne 0 11\n")
            .unwrap()
            .apply(&g)
            .unwrap()
            .graph;
        for op in 0..4 {
            let inj = FaultInjector::plan(FaultPlan {
                op_index: op,
                mode: FaultMode::Crash,
            });
            assert!(write_snapshot_atomic_with(&inj, &g2, &path).is_err());
            assert_eq!(std::fs::read(&path).unwrap(), before, "op {op} tore");
            assert!(load_snapshot(&path).is_ok());
            let _ = std::fs::remove_file(dir.join("g.snap.tmp"));
        }
        write_snapshot_atomic(&g2, &path).unwrap();
        assert!(equivalent(&load_snapshot(&path).unwrap(), &g2));
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut raw = encode(&figure1()).to_vec();
        raw.extend_from_slice(b"tail");
        // The header's exact total length catches appended bytes even
        // though no checksum covers them.
        assert!(matches!(
            decode(&raw),
            Err(SnapshotError::TrailingData { bytes: 4 })
        ));
    }

    #[test]
    fn resealing_cannot_hide_trailing_garbage() {
        // Appending bytes and recomputing every checksum still fails: the
        // header states the exact file length.
        let mut raw = encode(&figure1()).to_vec();
        raw.extend_from_slice(&[0u8; 6]);
        let raw = reseal_v3(raw);
        assert!(matches!(
            decode(&raw),
            Err(SnapshotError::TrailingData { bytes: 6 })
        ));
    }

    #[test]
    fn structural_check_rejects_out_of_range_edge_behind_valid_checksums() {
        let raw = encode(&figure1()).to_vec();
        let (off, len) = extent(&raw, Section::CsrEdges);
        assert!(len >= 4);
        let mut bad = raw.clone();
        bad[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let bad = reseal_v3(bad);
        assert!(matches!(
            decode(&bad),
            Err(SnapshotError::OutOfRange { .. })
        ));
    }

    #[test]
    fn structural_check_rejects_asymmetric_edges_behind_valid_checksums() {
        // Redirect vertex 0's first neighbor to a valid-but-unmirrored
        // endpoint: if ids stay in range and sortedness holds, only the
        // symmetry check can catch it (any failing layer is acceptable).
        let g = figure1();
        let raw = encode(&g).to_vec();
        let (off, _) = extent(&raw, Section::CsrEdges);
        let first = layout::u32_at(&raw, off);
        let n = g.num_vertices() as u32;
        let replacement = (1..n)
            .find(|&v| v != first && !g.graph().has_edge(0, v))
            .expect("figure 1 is not complete");
        let mut bad = raw.clone();
        bad[off..off + 4].copy_from_slice(&replacement.to_le_bytes());
        let bad = reseal_v3(bad);
        assert!(decode(&bad).is_err());
    }

    #[test]
    fn structural_check_rejects_invalid_utf8_name_behind_valid_checksums() {
        let raw = encode(&figure1()).to_vec();
        let (off, _) = extent(&raw, Section::Interner);
        let mut bad = raw.clone();
        bad[off + 4] = 0xFF; // first byte of the first name
        let bad = reseal_v3(bad);
        assert!(matches!(decode(&bad), Err(SnapshotError::BadName)));
    }

    #[test]
    fn structural_check_rejects_inconsistent_inverted_index() {
        // Replace the first inverted entry with a vertex that does NOT
        // carry attribute 0: range validity holds, so the transpose check
        // (or sortedness) must fire.
        let g = figure1();
        let raw = encode(&g).to_vec();
        let (off, len) = extent(&raw, Section::InvVertices);
        assert!(len >= 4);
        let v = layout::u32_at(&raw, off);
        let n = g.num_vertices() as u32;
        if let Some(w) = (0..n).find(|&w| !g.attributes_of(w).contains(&0) && w != v) {
            let mut bad = raw.clone();
            bad[off..off + 4].copy_from_slice(&w.to_le_bytes());
            let bad = reseal_v3(bad);
            assert!(decode(&bad).is_err());
        }
    }

    #[test]
    fn v2_structural_check_rejects_resealed_trailing_payload() {
        // Insert extra payload *before* the v2 checksum and reseal: the
        // checksum passes, the structural layer must still refuse.
        let raw = encode_v2(&figure1()).to_vec();
        let mut bad = raw[..raw.len() - 8].to_vec();
        bad.extend_from_slice(&[0u8; 6]);
        bad.extend_from_slice(&[0u8; 8]); // checksum placeholder
        let bad = reseal_v2(bad);
        assert!(matches!(
            decode(&bad),
            Err(SnapshotError::TrailingData { bytes: 6 })
        ));
    }

    #[test]
    fn v2_rejects_out_of_range_edge_behind_valid_checksum() {
        let g = figure1();
        let raw = encode_v2(&g).to_vec();
        // First edge endpoint lives right after header + n + m.
        let off = 8 + 4 + 8 + 8;
        let mut bad = raw.clone();
        bad[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        let bad = reseal_v2(bad);
        assert!(matches!(
            decode(&bad),
            Err(SnapshotError::OutOfRange { .. })
        ));
    }

    #[test]
    fn file_roundtrip() {
        let g = figure1();
        let dir = std::env::temp_dir().join("scpm_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig1.snap");
        save_snapshot(&g, &path).unwrap();
        let g2 = load_snapshot(&path).unwrap();
        assert!(equivalent(&g, &g2));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let r = load_snapshot("/nonexistent/path/to/snapshot.snap");
        assert!(matches!(r, Err(SnapshotError::Io(_))));
    }
}
