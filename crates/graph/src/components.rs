//! Connected components of a [`CsrGraph`].
//!
//! The mining engines work per component (carrying candidates across
//! components is pure waste), and the dataset generators use component
//! structure to validate that planted communities stay attached to the
//! background graph.

use crate::csr::{CsrGraph, VertexId};

/// The connected components of a graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Components {
    /// `label[v]` = component index of vertex `v` (dense, `0..count`).
    pub label: Vec<u32>,
    /// Number of components.
    pub count: usize,
}

impl Components {
    /// Computes components with an iterative BFS (no recursion, safe for
    /// deep/path-like graphs).
    pub fn of(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let mut label = vec![u32::MAX; n];
        let mut count = 0usize;
        let mut queue: Vec<VertexId> = Vec::new();
        for start in 0..n as VertexId {
            if label[start as usize] != u32::MAX {
                continue;
            }
            label[start as usize] = count as u32;
            queue.push(start);
            while let Some(v) = queue.pop() {
                for &u in g.neighbors(v) {
                    if label[u as usize] == u32::MAX {
                        label[u as usize] = count as u32;
                        queue.push(u);
                    }
                }
            }
            count += 1;
        }
        Components { label, count }
    }

    /// Vertices grouped by component, each list sorted ascending.
    pub fn groups(&self) -> Vec<Vec<VertexId>> {
        let mut out: Vec<Vec<VertexId>> = vec![Vec::new(); self.count];
        for (v, &c) in self.label.iter().enumerate() {
            out[c as usize].push(v as VertexId);
        }
        out
    }

    /// Size of each component.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &c in &self.label {
            sizes[c as usize] += 1;
        }
        sizes
    }

    /// The vertices of the largest component (sorted; ties broken by the
    /// smallest component index). Empty for an empty graph.
    pub fn largest(&self) -> Vec<VertexId> {
        let sizes = self.sizes();
        let Some((best, _)) = sizes
            .iter()
            .enumerate()
            .max_by_key(|&(i, &s)| (s, usize::MAX - i))
        else {
            return Vec::new();
        };
        self.label
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c as usize == best)
            .map(|(v, _)| v as VertexId)
            .collect()
    }

    /// Whether `u` and `v` are connected.
    pub fn same(&self, u: VertexId, v: VertexId) -> bool {
        self.label[u as usize] == self.label[v as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::graph_from_edges;

    #[test]
    fn single_component() {
        let g = graph_from_edges(4, [(0, 1), (1, 2), (2, 3)]);
        let c = Components::of(&g);
        assert_eq!(c.count, 1);
        assert!(c.same(0, 3));
        assert_eq!(c.largest(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn isolated_vertices_are_components() {
        let g = graph_from_edges(5, [(0, 1)]);
        let c = Components::of(&g);
        assert_eq!(c.count, 4);
        assert_eq!(c.sizes().iter().sum::<usize>(), 5);
        assert!(!c.same(0, 2));
    }

    #[test]
    fn groups_partition_vertices() {
        let g = graph_from_edges(6, [(0, 1), (2, 3), (3, 4)]);
        let c = Components::of(&g);
        let groups = c.groups();
        assert_eq!(groups.len(), 3);
        let total: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(total, 6);
        let mut sizes: Vec<usize> = groups.iter().map(Vec::len).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 3]);
        assert_eq!(c.largest(), vec![2, 3, 4]);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(0);
        let c = Components::of(&g);
        assert_eq!(c.count, 0);
        assert!(c.largest().is_empty());
        assert!(c.groups().is_empty());
    }
}
