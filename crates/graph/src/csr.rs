//! Compressed-sparse-row undirected graph with sorted neighbor lists.

/// Identifier of a vertex. Vertices are dense integers `0..n`.
pub type VertexId = u32;

/// An immutable undirected graph in compressed-sparse-row form.
///
/// Neighbor lists are sorted ascending, which makes adjacency queries
/// `O(log d)` (binary search) and neighborhood intersections linear merges.
/// Self-loops and parallel edges are never present (the
/// [`GraphBuilder`](crate::builder::GraphBuilder) removes them).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v+1]` indexes `neighbors` for vertex `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbor lists.
    neighbors: Vec<VertexId>,
}

impl CsrGraph {
    /// Builds a graph directly from CSR arrays.
    ///
    /// # Panics
    /// Panics if the arrays are inconsistent (wrong offset bounds, unsorted
    /// or duplicate neighbors, self-loops, or out-of-range vertex ids).
    pub fn from_parts(offsets: Vec<usize>, neighbors: Vec<VertexId>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have n+1 entries");
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert_eq!(
            *offsets.last().unwrap(),
            neighbors.len(),
            "last offset must equal neighbor array length"
        );
        let n = offsets.len() - 1;
        for v in 0..n {
            let (s, e) = (offsets[v], offsets[v + 1]);
            assert!(s <= e, "offsets must be non-decreasing");
            let list = &neighbors[s..e];
            for (i, &u) in list.iter().enumerate() {
                assert!((u as usize) < n, "neighbor id out of range");
                assert!(u as usize != v, "self-loop at vertex {v}");
                if i > 0 {
                    assert!(list[i - 1] < u, "neighbor list of {v} not strictly sorted");
                }
            }
        }
        CsrGraph { offsets, neighbors }
    }

    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        CsrGraph {
            offsets: vec![0; n + 1],
            neighbors: Vec::new(),
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.neighbors.len() / 2
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        let v = v as usize;
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let v = v as usize;
        &self.neighbors[self.offsets[v]..self.offsets[v + 1]]
    }

    /// Whether the undirected edge `{u, v}` is present. `O(log d(u))`.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        // Search the smaller adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Maximum degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as VertexId)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Iterates over all undirected edges `(u, v)` with `u < v`.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices() as VertexId).flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// Iterates over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.num_vertices() as VertexId
    }

    /// Number of edges inside the vertex set `set` (must be sorted,
    /// duplicate-free). Linear merges of each member's neighbor list with
    /// `set`.
    pub fn edges_within(&self, set: &[VertexId]) -> usize {
        debug_assert!(set.windows(2).all(|w| w[0] < w[1]), "set must be sorted");
        let mut twice = 0usize;
        for &v in set {
            twice += intersect_count(self.neighbors(v), set);
        }
        twice / 2
    }

    /// Degree of `v` restricted to the sorted vertex set `set`.
    pub fn degree_within(&self, v: VertexId, set: &[VertexId]) -> usize {
        intersect_count(self.neighbors(v), set)
    }
}

/// Counts `|a ∩ b|` for two sorted, duplicate-free slices.
///
/// Uses a galloping merge when lengths are very skewed, otherwise a linear
/// two-pointer merge.
pub fn intersect_count(a: &[VertexId], b: &[VertexId]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        return 0;
    }
    if large.len() / small.len().max(1) >= 16 {
        // Galloping: binary search each small element in the large list.
        let mut count = 0;
        let mut lo = 0usize;
        for &x in small {
            match large[lo..].binary_search(&x) {
                Ok(i) => {
                    count += 1;
                    lo += i + 1;
                }
                Err(i) => lo += i,
            }
            if lo >= large.len() {
                break;
            }
        }
        count
    } else {
        let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
        while i < small.len() && j < large.len() {
            match small[i].cmp(&large[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }
}

/// Writes `a ∩ b` into `out` (cleared first), galloping through whichever
/// slice is larger.
///
/// For each element of the smaller slice the position in the larger one is
/// found by *exponential search* from the previous match (probe offsets
/// 1, 2, 4, … then binary-search the bracketed window), so the cost is
/// `O(s · log(ℓ/s))` instead of the `O(s + ℓ)` linear merge — the regime of
/// `vertices_with_all`, where a rare attribute's tidset is intersected
/// against very frequent ones. Falls back to the linear merge when the
/// sizes are comparable. Output is identical to [`intersect_into`].
pub fn intersect_adaptive_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if small.is_empty() {
        out.clear();
        return;
    }
    if large.len() / small.len() < 8 {
        intersect_into(a, b, out);
        return;
    }
    out.clear();
    let mut lo = 0usize;
    for &x in small {
        // Exponential probe: find `hi` with `large[hi] >= x`.
        let mut step = 1usize;
        let mut hi = lo;
        while hi < large.len() && large[hi] < x {
            lo = hi + 1;
            hi = lo + step;
            step *= 2;
        }
        // The probe stopped at `hi` with `large[hi] >= x` (or past the
        // end); include `hi` itself in the bracketed window.
        let hi = (hi + 1).min(large.len());
        match large[lo..hi].binary_search(&x) {
            Ok(i) => {
                out.push(x);
                lo += i + 1;
            }
            Err(i) => lo += i,
        }
        if lo >= large.len() {
            break;
        }
    }
}

/// Writes `a ∩ b` into `out` (cleared first) for sorted slices.
pub fn intersect_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    out.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn path3() -> CsrGraph {
        // 0 - 1 - 2
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.build()
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(4);
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(0), 0);
        assert!(!g.has_edge(0, 1));
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn zero_vertex_graph() {
        let g = CsrGraph::empty(0);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.edges().count(), 0);
    }

    #[test]
    fn path_graph_basics() {
        let g = path3();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.degree(1), 2);
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.max_degree(), 2);
    }

    #[test]
    fn edge_iteration_yields_each_edge_once() {
        let g = path3();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn edges_within_subsets() {
        let mut b = GraphBuilder::new(5);
        // Triangle 0-1-2 plus pendant 3 on 0; vertex 4 isolated.
        for (u, v) in [(0, 1), (1, 2), (0, 2), (0, 3)] {
            b.add_edge(u, v);
        }
        let g = b.build();
        assert_eq!(g.edges_within(&[0, 1, 2]), 3);
        assert_eq!(g.edges_within(&[0, 3]), 1);
        assert_eq!(g.edges_within(&[1, 3, 4]), 0);
        assert_eq!(g.edges_within(&[]), 0);
        assert_eq!(g.degree_within(0, &[1, 2, 3]), 3);
        assert_eq!(g.degree_within(4, &[0, 1, 2, 3]), 0);
    }

    #[test]
    fn intersect_count_basic() {
        assert_eq!(intersect_count(&[1, 3, 5], &[2, 3, 4, 5]), 2);
        assert_eq!(intersect_count(&[], &[1, 2]), 0);
        assert_eq!(intersect_count(&[7], &[7]), 1);
    }

    #[test]
    fn intersect_count_galloping_path() {
        let small = vec![5u32, 100, 900];
        let large: Vec<u32> = (0..1000).collect();
        assert_eq!(intersect_count(&small, &large), 3);
        let missing = vec![2000u32, 3000];
        assert_eq!(intersect_count(&missing, &large), 0);
    }

    #[test]
    fn intersect_adaptive_matches_linear() {
        let cases: Vec<(Vec<u32>, Vec<u32>)> = vec![
            (vec![], vec![1, 2, 3]),
            (vec![5, 100, 900], (0..1000).collect()),
            (vec![2000, 3000], (0..1000).collect()),
            ((0..50).collect(), (25..75).collect()),
            (vec![0, 999], (0..1000).collect()),
            (vec![7], vec![7]),
        ];
        for (a, b) in cases {
            let mut fast = Vec::new();
            let mut slow = Vec::new();
            intersect_adaptive_into(&a, &b, &mut fast);
            intersect_into(&a, &b, &mut slow);
            assert_eq!(fast, slow, "a={a:?}");
            // Symmetric argument order must agree too.
            intersect_adaptive_into(&b, &a, &mut fast);
            assert_eq!(fast, slow, "swapped a={a:?}");
        }
    }

    #[test]
    fn intersect_into_basic() {
        let mut out = Vec::new();
        intersect_into(&[1, 2, 3, 8], &[2, 3, 4, 8], &mut out);
        assert_eq!(out, vec![2, 3, 8]);
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn from_parts_rejects_self_loop() {
        CsrGraph::from_parts(vec![0, 1], vec![0]);
    }

    #[test]
    #[should_panic(expected = "not strictly sorted")]
    fn from_parts_rejects_unsorted() {
        CsrGraph::from_parts(vec![0, 2, 3, 5], vec![2, 1, 0, 0, 1]);
    }
}
