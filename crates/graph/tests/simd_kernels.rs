//! Kernel-equivalence suite: every explicit-SIMD kernel must be
//! bit-for-bit equal to its blocked-scalar twin on adversarial word
//! patterns — tail masks, all-zero summaries, single-bit rows, unequal
//! slice lengths, and ≥ 8192-bit sets (past the 4-word blocking and the
//! 8-word summary grouping).
//!
//! The `_with` dispatchers accept an explicit [`KernelBackend`], so one
//! process exercises the scalar path and (when compiled and available)
//! the AVX2/NEON paths side by side. On a build without the `simd`
//! feature — or on hardware without the instruction set — an explicit
//! backend request falls back to scalar and the comparisons degenerate
//! to scalar-vs-scalar: the suite runs (and must pass) under both
//! feature configurations, which is exactly what CI's feature-matrix job
//! does.

use proptest::prelude::*;
use scpm_graph::bitadj::{
    and_not_count, and_not_count_with, detect_kernel_backend, difference_is_empty,
    difference_is_empty_with, gather_intersect_popcount, gather_intersect_popcount_with,
    intersect_popcount, intersect_popcount_with, simd_compiled, BitAdjacency, KernelBackend,
    VertexBitset,
};
use scpm_graph::builder::GraphBuilder;

/// Every backend variant; unavailable ones dispatch to scalar, so the
/// list is safe to iterate unconditionally.
const BACKENDS: [KernelBackend; 3] = [
    KernelBackend::Scalar,
    KernelBackend::Avx2,
    KernelBackend::Neon,
];

/// One word drawn from the adversarial corners, not just uniform bits:
/// all-zero (empty summaries), all-one, single-bit, low/high tail masks,
/// and uniform random.
fn word() -> impl Strategy<Value = u64> {
    prop_oneof![
        Just(0u64),
        Just(u64::MAX),
        (0u32..64).prop_map(|b| 1u64 << b),
        (1u32..=64).prop_map(|b| u64::MAX >> (64 - b)),
        (1u32..64).prop_map(|b| u64::MAX << b),
        (1u32..=63).prop_map(|b| (1u64 << b) - 1),
        any::<u64>(),
        any::<u64>(),
    ]
}

/// Word slices long enough to leave the 4-word blocks and 8-word summary
/// groups behind: up to 160 words = 10240 bits.
fn words(max_len: usize) -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(word(), 0..=max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `|a ∩ b|` — including unequal lengths (zip-truncation).
    #[test]
    fn intersect_popcount_backends_agree(a in words(160), b in words(160)) {
        let expect = intersect_popcount(&a, &b);
        for backend in BACKENDS {
            prop_assert_eq!(
                intersect_popcount_with(backend, &a, &b),
                expect,
                "backend {:?}",
                backend
            );
        }
    }

    /// `|a \ b|` — words of `a` beyond `b`'s length count into the
    /// difference, so the tail handling differs from plain truncation.
    #[test]
    fn and_not_count_backends_agree(a in words(160), b in words(160)) {
        let expect = and_not_count(&a, &b);
        for backend in BACKENDS {
            prop_assert_eq!(
                and_not_count_with(backend, &a, &b),
                expect,
                "backend {:?}",
                backend
            );
        }
    }

    /// `a ⊆ b` — the early-exit kernel; equivalence with the counting
    /// kernel pins the short-circuit against the full scan.
    #[test]
    fn difference_is_empty_backends_agree(a in words(160), b in words(160)) {
        let expect = difference_is_empty(&a, &b);
        prop_assert_eq!(expect, and_not_count(&a, &b) == 0);
        for backend in BACKENDS {
            prop_assert_eq!(
                difference_is_empty_with(backend, &a, &b),
                expect,
                "backend {:?}",
                backend
            );
        }
    }

    /// Subset inputs hit the no-early-exit path of `difference_is_empty`
    /// — force them explicitly since random pairs are almost never ⊆.
    #[test]
    fn difference_is_empty_on_forced_subsets(b in words(160), mask in words(160)) {
        let a: Vec<u64> = b.iter().zip(&mask).map(|(&x, &m)| x & m).collect();
        for backend in BACKENDS {
            prop_assert!(difference_is_empty_with(backend, &a, &b), "backend {:?}", backend);
        }
    }

    /// Gathered `|a ∩ b|` over an arbitrary in-range word-index list
    /// (duplicates included — the kernel is a plain sum over `idx`).
    #[test]
    fn gather_backends_agree(
        ab in (8usize..=160).prop_flat_map(|n| (
            proptest::collection::vec(word(), n),
            proptest::collection::vec(word(), n),
            proptest::collection::vec(0u32..n as u32, 0..=2 * n),
        )),
    ) {
        let (a, b, idx) = ab;
        let expect = gather_intersect_popcount(&a, &b, &idx);
        for backend in BACKENDS {
            prop_assert_eq!(
                gather_intersect_popcount_with(backend, &a, &b, &idx),
                expect,
                "backend {:?}",
                backend
            );
        }
    }

    /// The summary-blocked `VertexBitset` walk: per-block dispatch must
    /// not change the count, for sparse single-bit sets through dense
    /// ones, over universes past 8192 bits.
    #[test]
    fn bitset_intersect_count_words_backends_agree(
        nv in prop_oneof![Just(64usize), Just(600), Just(8192), Just(9000)],
        seed_bits in proptest::collection::vec(any::<u32>(), 0..60),
        other in words(160),
    ) {
        let mut set: Vec<u32> = seed_bits.iter().map(|&b| b % nv as u32).collect();
        set.sort_unstable();
        set.dedup();
        let bits = VertexBitset::from_sorted(nv, &set);
        // The walk's contract: `other` is a same-universe packed row.
        let mut other = other;
        other.resize(bits.num_words(), 0);
        let expect = bits.intersect_count_words(&other);
        for backend in BACKENDS {
            prop_assert_eq!(
                bits.intersect_count_words_with(backend, &other),
                expect,
                "backend {:?}",
                backend
            );
        }
    }

    /// Summary-level subset fast-reject plus the word-level check.
    #[test]
    fn bitset_is_subset_of_backends_agree(
        nv in prop_oneof![Just(64usize), Just(600), Just(8192)],
        seed_a in proptest::collection::vec(any::<u32>(), 0..40),
        seed_b in proptest::collection::vec(any::<u32>(), 0..40),
        force_subset in any::<bool>(),
    ) {
        let mut a: Vec<u32> = seed_a.iter().map(|&b| b % nv as u32).collect();
        a.sort_unstable();
        a.dedup();
        let mut b: Vec<u32> = seed_b.iter().map(|&x| x % nv as u32).collect();
        if force_subset {
            b.extend_from_slice(&a);
        }
        b.sort_unstable();
        b.dedup();
        let (pa, pb) = (VertexBitset::from_sorted(nv, &a), VertexBitset::from_sorted(nv, &b));
        let expect = pa.is_subset_of(&pb);
        prop_assert_eq!(expect, a.iter().all(|v| b.contains(v)));
        for backend in BACKENDS {
            prop_assert_eq!(pa.is_subset_of_with(backend, &pb), expect, "backend {:?}", backend);
        }
    }

    /// Row-vs-set degree through `BitAdjacency`: single-bit rows (leaf
    /// vertices) up to dense rows, against sparse and dense member sets.
    #[test]
    fn degree_within_backends_agree(
        n in 2usize..=96,
        edges in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..300),
        members in proptest::collection::vec(any::<u32>(), 0..48),
    ) {
        let mut builder = GraphBuilder::new(n);
        for (u, v) in edges {
            let (u, v) = (u % n as u32, v % n as u32);
            if u != v {
                builder.add_edge(u, v);
            }
        }
        let g = builder.build();
        let adj = BitAdjacency::from_csr(&g);
        let mut set: Vec<u32> = members.iter().map(|&m| m % n as u32).collect();
        set.sort_unstable();
        set.dedup();
        let bits = VertexBitset::from_sorted(n, &set);
        for v in 0..n as u32 {
            let expect = adj.degree_within(v, &bits);
            prop_assert_eq!(expect, g.degree_within(v, &set));
            for backend in BACKENDS {
                prop_assert_eq!(
                    adj.degree_within_with(backend, v, &bits),
                    expect,
                    "v {}, backend {:?}",
                    v,
                    backend
                );
            }
        }
    }
}

/// Directed corners the generators only hit probabilistically: empty
/// slices, the exact 4-word block boundary, the exact 8192-bit universe,
/// and all-zero operands (all-zero summaries).
#[test]
fn kernel_corner_cases() {
    let zero128 = vec![0u64; 128];
    let ones128 = vec![u64::MAX; 128];
    let mut single = vec![0u64; 128];
    single[127] = 1 << 63; // bit 8191: the very last bit of 8192
    for backend in BACKENDS {
        assert_eq!(intersect_popcount_with(backend, &[], &[]), 0);
        assert_eq!(intersect_popcount_with(backend, &zero128, &ones128), 0);
        assert_eq!(intersect_popcount_with(backend, &ones128, &ones128), 8192);
        assert_eq!(intersect_popcount_with(backend, &single, &ones128), 1);
        assert_eq!(and_not_count_with(backend, &ones128, &zero128), 8192);
        assert_eq!(and_not_count_with(backend, &ones128, &[]), 8192);
        assert_eq!(and_not_count_with(backend, &single, &ones128), 0);
        assert!(difference_is_empty_with(backend, &zero128, &zero128));
        assert!(difference_is_empty_with(backend, &single, &ones128));
        assert!(!difference_is_empty_with(backend, &single, &zero128));
        assert!(!difference_is_empty_with(backend, &single, &[]));
        // Exactly one 4-word block, then a 3-word tail.
        assert_eq!(
            intersect_popcount_with(backend, &ones128[..7], &ones128[..7]),
            448
        );
        assert_eq!(
            and_not_count_with(backend, &ones128[..7], &zero128[..3]),
            448
        );
    }
}

/// The detector resolves to a compiled-in backend, and `name()` round-
/// trips — mostly a smoke check that the dispatch ladder is wired.
#[test]
fn detector_is_consistent_with_feature() {
    let backend = detect_kernel_backend();
    if !simd_compiled() {
        assert_eq!(backend, KernelBackend::Scalar);
    }
    assert!(["scalar", "avx2", "neon"].contains(&backend.name()));
}
