//! Property tests for the delta journal's crash-tolerance contract:
//!
//! * truncating a journal at ANY byte length yields a clean prefix of
//!   the appended records (plus a reported torn tail) — never an error
//!   past the header, never a fabricated record;
//! * [`repair_torn_tail`] is idempotent: repairing an intact journal is
//!   a no-op, and repairing twice equals repairing once;
//! * flipping any single byte of an intact journal is detected — decode
//!   either rejects the file or returns a strict prefix of the original
//!   records, never a silently altered one.

use std::path::PathBuf;

use proptest::prelude::*;
use scpm_graph::journal::{decode_journal, read_journal, repair_torn_tail};
use scpm_graph::{FaultInjector, GraphDelta, JournalRecord, JournalWriter};

/// Length of the journal header (magic + version + base generation);
/// anything shorter cannot hold a record and decodes as "not a journal".
const HEADER_LEN: usize = 20;

fn tpath(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "scpm_proptest_durability_{}_{name}.wal",
        std::process::id()
    ))
}

/// Writes a journal of `deltas` (as `a <v> X<c>` attribute ops) and
/// returns its full bytes.
fn build_journal(path: &PathBuf, deltas: &[(u8, u8)]) -> Vec<u8> {
    let _ = std::fs::remove_file(path);
    let inj = FaultInjector::none();
    let mut writer = JournalWriter::create_with(&inj, path, 0).expect("create journal");
    for &(v, c) in deltas {
        let delta = GraphDelta::parse(&format!("a {} X{}\n", v % 11, (b'A' + c % 26) as char))
            .expect("delta parses");
        writer.append(&delta).expect("append");
    }
    std::fs::read(path).expect("read journal back")
}

fn is_prefix(shorter: &[JournalRecord], full: &[JournalRecord]) -> bool {
    shorter.len() <= full.len() && shorter.iter().zip(full).all(|(a, b)| a == b)
}

proptest! {
    #[test]
    fn truncation_at_any_length_yields_a_clean_prefix(
        deltas in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..6),
        cut in 0u32..10_000,
    ) {
        let path = tpath("truncate");
        let full = build_journal(&path, &deltas);
        let original = decode_journal(&full).expect("intact journal decodes");
        prop_assert!(original.torn.is_none());
        prop_assert_eq!(original.records.len(), deltas.len());

        let len = full.len() * cut as usize / 10_000;
        match decode_journal(&full[..len]) {
            Err(_) => prop_assert!(
                len < HEADER_LEN,
                "decode errored at {len} bytes, past the {HEADER_LEN}-byte header"
            ),
            Ok(read) => {
                prop_assert!(len >= HEADER_LEN);
                prop_assert!(is_prefix(&read.records, &original.records));
                match read.torn {
                    None => prop_assert_eq!(read.records.len() == original.records.len(), len == full.len()),
                    Some(torn) => {
                        prop_assert_eq!(torn.valid_len + torn.dropped_bytes, len as u64);
                        // The reported valid prefix really is clean.
                        let again = decode_journal(&full[..torn.valid_len as usize])
                            .expect("valid prefix decodes");
                        prop_assert!(again.torn.is_none());
                        prop_assert_eq!(again.records, read.records);
                    }
                }
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_repair_is_idempotent(
        deltas in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..6),
        cut in 0u32..10_000,
    ) {
        let path = tpath("repair");
        let full = build_journal(&path, &deltas);
        let original = decode_journal(&full).expect("intact journal decodes");

        // Truncate somewhere past the header (shorter is not a journal).
        let len = HEADER_LEN + (full.len() - HEADER_LEN) * cut as usize / 10_000;
        std::fs::write(&path, &full[..len]).expect("write truncated copy");

        let first = repair_torn_tail(&path).expect("repair tolerates truncation");
        let read = read_journal(&path).expect("repaired journal decodes");
        prop_assert!(read.torn.is_none(), "repair left a torn tail");
        prop_assert!(is_prefix(&read.records, &original.records));
        if let Some(torn) = &first {
            prop_assert_eq!(torn.valid_len + torn.dropped_bytes, len as u64);
        }

        // Second repair: a no-op on an already-intact file.
        let second = repair_torn_tail(&path).expect("second repair");
        prop_assert!(second.is_none(), "repair of an intact journal reported work");
        let bytes = std::fs::read(&path).expect("read repaired journal");
        prop_assert_eq!(bytes.len() as u64, first.map(|t| t.valid_len).unwrap_or(len as u64));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn single_byte_flips_never_alter_a_record_silently(
        deltas in proptest::collection::vec((any::<u8>(), any::<u8>()), 1..6),
        pos in 0u32..10_000,
        mask in 0u8..255,
    ) {
        let path = tpath("flip");
        let mut bytes = build_journal(&path, &deltas);
        let original = decode_journal(&bytes).expect("intact journal decodes");

        let at = (bytes.len() - 1) * pos as usize / 10_000;
        bytes[at] ^= mask + 1;
        if let Ok(read) = decode_journal(&bytes) {
            // A flip in the final frame is indistinguishable from a torn
            // append and drops that record; everything surviving must be
            // byte-identical to what was written.
            prop_assert!(
                read.records.len() < original.records.len(),
                "a flipped byte left every record intact"
            );
            prop_assert!(is_prefix(&read.records, &original.records));
        }
        let _ = std::fs::remove_file(&path);
    }
}
