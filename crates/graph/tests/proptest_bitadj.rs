//! Property tests for the packed-bitset layer: `BitAdjacency` /
//! `VertexBitset` must agree with the `CsrGraph`/sorted-slice reference on
//! random graphs, `InducedSubgraph::project` must equal a fresh
//! `extract`, and the galloping tidset intersection must match the naive
//! k-way merge.

use proptest::prelude::*;
use scpm_graph::attributed::{AttributedGraph, AttributedGraphBuilder};
use scpm_graph::bitadj::{
    and_not_count, difference_is_empty, gather_intersect_popcount, intersect_popcount,
    BitAdjacency, VertexBitset, SUMMARY_GROUP_WORDS,
};
use scpm_graph::builder::GraphBuilder;
use scpm_graph::csr::{intersect_adaptive_into, intersect_count, intersect_into, CsrGraph};
use scpm_graph::induced::InducedSubgraph;

fn random_graph() -> impl Strategy<Value = CsrGraph> {
    (2usize..=80).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 0..(3 * n)).prop_map(move |edges| {
            let mut b = GraphBuilder::new(n);
            for (u, v) in edges {
                if u != v {
                    b.add_edge(u, v);
                }
            }
            b.build()
        })
    })
}

fn subset_of(n: usize) -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(any::<bool>(), n).prop_map(|keep| {
        keep.iter()
            .enumerate()
            .filter(|(_, &k)| k)
            .map(|(i, _)| i as u32)
            .collect()
    })
}

fn attributed_graph() -> impl Strategy<Value = AttributedGraph> {
    (4usize..=40, 2usize..=6).prop_flat_map(|(n, num_attrs)| {
        let edge = (0..n as u32, 0..n as u32);
        let assign = (0..n as u32, 0..num_attrs as u32);
        (
            proptest::collection::vec(edge, 0..(2 * n)),
            proptest::collection::vec(assign, 0..(3 * n)),
        )
            .prop_map(move |(edges, assigns)| {
                let mut b = AttributedGraphBuilder::new(n);
                for a in 0..num_attrs {
                    b.intern_attr(&format!("a{a}"));
                }
                for (u, v) in edges {
                    if u != v {
                        b.add_edge(u, v);
                    }
                }
                for (v, a) in assigns {
                    b.add_attr(v, a);
                }
                b.build()
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bit_adjacency_agrees_with_csr(g in random_graph()) {
        let adj = BitAdjacency::from_csr(&g);
        prop_assert_eq!(adj.num_vertices(), g.num_vertices());
        for u in 0..g.num_vertices() as u32 {
            prop_assert_eq!(adj.degree(u), g.degree(u), "degree of {}", u);
            for v in 0..g.num_vertices() as u32 {
                prop_assert_eq!(adj.has_edge(u, v), g.has_edge(u, v), "edge {}-{}", u, v);
            }
        }
    }

    #[test]
    fn bitset_kernels_agree_with_slices(g in random_graph(), raw in subset_of(80)) {
        let n = g.num_vertices();
        let set: Vec<u32> = raw.into_iter().filter(|&v| (v as usize) < n).collect();
        let bits = VertexBitset::from_sorted(n, &set);
        prop_assert_eq!(bits.count(), set.len());
        prop_assert_eq!(bits.to_vec(), set.clone());
        let adj = BitAdjacency::from_csr(&g);
        for u in 0..n as u32 {
            // Popcount row ∧ set must equal the sorted-slice merge count.
            prop_assert_eq!(
                adj.degree_within(u, &bits),
                intersect_count(g.neighbors(u), &set),
                "degree_within of {}", u
            );
            prop_assert_eq!(
                bits.intersect_count_words(adj.row(u)),
                g.degree_within(u, &set)
            );
        }
    }

    #[test]
    fn bitset_set_algebra_matches_reference(a in subset_of(100), b in subset_of(100)) {
        let ba = VertexBitset::from_sorted(100, &a);
        let bb = VertexBitset::from_sorted(100, &b);
        let mut expect_and = Vec::new();
        intersect_into(&a, &b, &mut expect_and);
        prop_assert_eq!(ba.intersect_count(&bb), expect_and.len());
        let mut inter = ba.clone();
        inter.intersect_with(&bb);
        prop_assert_eq!(inter.to_vec(), expect_and.clone());
        let mut diff = ba.clone();
        diff.difference_with(&bb);
        let expect_diff: Vec<u32> = a.iter().copied().filter(|v| !b.contains(v)).collect();
        prop_assert_eq!(diff.to_vec(), expect_diff);
        let is_subset = a.iter().all(|v| b.contains(v));
        prop_assert_eq!(ba.is_subset_of(&bb), is_subset);
        prop_assert!(inter.is_subset_of(&ba));
    }

    /// Every fused kernel must equal its compose-of-primitives reference
    /// across random densities: `intersect_popcount` == intersect then
    /// count, `and_not_count` == difference then count,
    /// `difference_is_empty` == (difference count == 0), and the gathered
    /// variant restricted to either operand's active words == the dense
    /// result.
    #[test]
    fn fused_kernels_equal_composed_primitives(
        a in subset_of(700),
        b in subset_of(700),
    ) {
        let n = 700; // 11 words → several summary groups, ragged tail
        let ba = VertexBitset::from_sorted(n, &a);
        let bb = VertexBitset::from_sorted(n, &b);

        let mut inter = ba.clone();
        inter.intersect_with(&bb);
        prop_assert_eq!(intersect_popcount(ba.words(), bb.words()), inter.count());
        prop_assert_eq!(ba.intersect_count(&bb), inter.count());

        let mut diff = ba.clone();
        diff.difference_with(&bb);
        prop_assert_eq!(and_not_count(ba.words(), bb.words()), diff.count());
        prop_assert_eq!(
            difference_is_empty(ba.words(), bb.words()),
            and_not_count(ba.words(), bb.words()) == 0
        );
        prop_assert_eq!(ba.is_subset_of(&bb), diff.count() == 0);

        // Gather over either operand's active words sees the whole
        // intersection.
        let mut active = Vec::new();
        bb.active_words_into(&mut active);
        prop_assert_eq!(
            gather_intersect_popcount(ba.words(), bb.words(), &active),
            inter.count()
        );
        ba.active_words_into(&mut active);
        prop_assert_eq!(
            gather_intersect_popcount(ba.words(), bb.words(), &active),
            inter.count()
        );
    }

    /// The summary hierarchy stays consistent with the data words under
    /// arbitrary interleavings of insert / tracked insert / remove /
    /// intersect / difference / clear_active, and the active-word list
    /// built by tracked insertion covers exactly the nonzero words.
    #[test]
    fn summary_consistent_under_mutation(
        inserts in subset_of(700),
        removes in subset_of(700),
        other in subset_of(700),
        pick_op in 0u8..3,
    ) {
        let n = 700;
        let mut bits = VertexBitset::empty(n);
        let mut tracked = Vec::new();
        for &v in &inserts {
            bits.insert_tracked(v, &mut tracked);
        }
        prop_assert!(bits.canonical());
        // Tracked words = exactly the nonzero words.
        let mut scanned = Vec::new();
        let scan = bits.active_words_into(&mut scanned);
        let mut sorted_tracked = tracked.clone();
        sorted_tracked.sort_unstable();
        prop_assert_eq!(&sorted_tracked, &scanned);
        prop_assert_eq!(
            scan.blocks_skipped,
            bits.summary().iter().filter(|&&s| s == 0).count()
        );

        for &v in &removes {
            bits.remove(v);
        }
        prop_assert!(bits.canonical());
        let ob = VertexBitset::from_sorted(n, &other);
        match pick_op {
            0 => bits.intersect_with(&ob),
            1 => bits.difference_with(&ob),
            _ => {}
        }
        prop_assert!(bits.canonical());
        // Reference membership survives the op pipeline.
        let expect: Vec<u32> = (0..n as u32)
            .filter(|v| {
                let mut m = inserts.contains(v) && !removes.contains(v);
                match pick_op {
                    0 => m = m && other.contains(v),
                    1 => m = m && !other.contains(v),
                    _ => {}
                }
                m
            })
            .collect();
        prop_assert_eq!(bits.to_vec(), expect);
        // clear_active over a full scan empties the set.
        let mut active = Vec::new();
        bits.active_words_into(&mut active);
        bits.clear_active(&mut active);
        prop_assert!(bits.is_empty() && bits.canonical());
        prop_assert_eq!(bits.count(), 0);
    }

    /// `BitAdjacency::row_active` lists exactly the nonzero words of each
    /// row, and a gather restricted to it reproduces the dense
    /// intersection count (8-word groups: [`SUMMARY_GROUP_WORDS`]).
    #[test]
    fn row_active_lists_match_rows(g in random_graph(), raw in subset_of(80)) {
        let n = g.num_vertices();
        let set: Vec<u32> = raw.into_iter().filter(|&v| (v as usize) < n).collect();
        let bits = VertexBitset::from_sorted(n, &set);
        let adj = BitAdjacency::from_csr(&g);
        prop_assert!(bits.num_blocks() == bits.num_words().div_ceil(SUMMARY_GROUP_WORDS));
        for u in 0..n as u32 {
            let row = adj.row(u);
            let expect: Vec<u32> = (0..row.len() as u32).filter(|&wi| row[wi as usize] != 0).collect();
            prop_assert_eq!(adj.row_active(u), &expect[..], "row {}", u);
            prop_assert_eq!(
                gather_intersect_popcount(row, bits.words(), adj.row_active(u)),
                intersect_popcount(row, bits.words()),
                "gather over row {}", u
            );
        }
    }

    #[test]
    fn project_equals_extract(g in random_graph(), raw_parent in subset_of(80), raw_child in subset_of(80)) {
        let n = g.num_vertices();
        let parent_set: Vec<u32> = raw_parent.into_iter().filter(|&v| (v as usize) < n).collect();
        let parent = InducedSubgraph::extract(&g, &parent_set);
        // A child set ⊆ parent set, expressed in parent-local ids.
        let keep_locals: Vec<u32> = raw_child
            .into_iter()
            .filter(|&l| (l as usize) < parent_set.len())
            .collect();
        let keep = VertexBitset::from_sorted(parent.num_vertices(), &keep_locals);
        let child = parent.project(&keep);
        let child_globals: Vec<u32> = keep_locals.iter().map(|&l| parent.to_original(l)).collect();
        let direct = InducedSubgraph::extract(&g, &child_globals);
        prop_assert_eq!(child.graph, direct.graph);
        prop_assert_eq!(child.original, direct.original);
    }

    #[test]
    fn galloping_tidset_intersection_matches_naive(
        g in attributed_graph(),
        pick in proptest::collection::vec(0u32..6, 1..4),
    ) {
        let attrs: Vec<u32> = pick
            .into_iter()
            .filter(|&a| (a as usize) < g.num_attributes())
            .collect();
        if attrs.is_empty() {
            return Ok(());
        }
        // Naive reference: unordered linear merges, no galloping.
        let mut expect: Vec<u32> = g.vertices_with(attrs[0]).to_vec();
        let mut tmp = Vec::new();
        for &a in &attrs[1..] {
            intersect_into(&expect, g.vertices_with(a), &mut tmp);
            std::mem::swap(&mut expect, &mut tmp);
        }
        prop_assert_eq!(g.vertices_with_all(&attrs), expect.clone());
        let mut out = Vec::new();
        let mut scratch = vec![99u32; 7]; // dirty scratch must not leak through
        g.vertices_with_all_into(&attrs, &mut out, &mut scratch);
        prop_assert_eq!(out, expect);
    }

    #[test]
    fn adaptive_intersection_matches_linear(a in subset_of(400), b in subset_of(60)) {
        let mut fast = Vec::new();
        let mut slow = Vec::new();
        intersect_adaptive_into(&a, &b, &mut fast);
        intersect_into(&a, &b, &mut slow);
        prop_assert_eq!(&fast, &slow);
        intersect_adaptive_into(&b, &a, &mut fast);
        prop_assert_eq!(&fast, &slow);
    }
}
