//! Property-based tests for the graph substrate.

use proptest::prelude::*;
use scpm_graph::attributed::AttributedGraphBuilder;
use scpm_graph::builder::GraphBuilder;
use scpm_graph::components::Components;
use scpm_graph::csr::{intersect_count, intersect_into, VertexId};
use scpm_graph::induced::InducedSubgraph;
use scpm_graph::kcore::CoreDecomposition;
use scpm_graph::snapshot;
use scpm_graph::traversal::{bfs_distances, UNREACHABLE};

/// Strategy: a random edge list over `n` vertices.
fn edges_strategy(max_n: usize) -> impl Strategy<Value = (usize, Vec<(u32, u32)>)> {
    (2usize..=max_n).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        (Just(n), proptest::collection::vec(edge, 0..(n * 3)))
    })
}

proptest! {
    #[test]
    fn csr_degree_sums_to_twice_edges((n, edges) in edges_strategy(40)) {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            if u != v { b.add_edge(u, v); }
        }
        let g = b.build();
        let deg_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(deg_sum, 2 * g.num_edges());
    }

    #[test]
    fn csr_adjacency_is_symmetric((n, edges) in edges_strategy(30)) {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges {
            if u != v { b.add_edge(u, v); }
        }
        let g = b.build();
        for u in g.vertices() {
            for &v in g.neighbors(u) {
                prop_assert!(g.has_edge(v, u));
                prop_assert!(g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn induced_subgraph_edges_match_membership((n, edges) in edges_strategy(25), mask in proptest::collection::vec(any::<bool>(), 25)) {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges.iter().copied() {
            if u != v { b.add_edge(u, v); }
        }
        let g = b.build();
        let subset: Vec<VertexId> = (0..n as u32).filter(|&v| mask[v as usize]).collect();
        let sub = InducedSubgraph::extract(&g, &subset);
        // Every subgraph edge corresponds to a global edge between members.
        for (lu, lv) in sub.graph.edges() {
            let gu = sub.to_original(lu);
            let gv = sub.to_original(lv);
            prop_assert!(g.has_edge(gu, gv));
        }
        // Count global edges within the subset and compare.
        let mut expect = 0usize;
        for (i, &u) in subset.iter().enumerate() {
            for &v in subset.iter().skip(i + 1) {
                if g.has_edge(u, v) { expect += 1; }
            }
        }
        prop_assert_eq!(sub.graph.num_edges(), expect);
    }

    #[test]
    fn intersect_count_matches_naive(
        mut a in proptest::collection::vec(0u32..200, 0..60),
        mut b in proptest::collection::vec(0u32..200, 0..60),
    ) {
        a.sort_unstable(); a.dedup();
        b.sort_unstable(); b.dedup();
        let naive = a.iter().filter(|x| b.contains(x)).count();
        prop_assert_eq!(intersect_count(&a, &b), naive);
        let mut out = Vec::new();
        intersect_into(&a, &b, &mut out);
        prop_assert_eq!(out.len(), naive);
        prop_assert!(out.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn builder_idempotent_on_duplicate_edges((n, edges) in edges_strategy(20)) {
        let mut b1 = GraphBuilder::new(n);
        let mut b2 = GraphBuilder::new(n);
        for (u, v) in edges.iter().copied() {
            if u != v {
                b1.add_edge(u, v);
                b2.add_edge(u, v);
                b2.add_edge(v, u); // duplicate in the other direction
            }
        }
        prop_assert_eq!(b1.build(), b2.build());
    }

    #[test]
    fn components_agree_with_bfs_reachability((n, edges) in edges_strategy(25)) {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges { if u != v { b.add_edge(u, v); } }
        let g = b.build();
        let comp = Components::of(&g);
        // Same component ⟺ finite BFS distance.
        for u in g.vertices() {
            let dist = bfs_distances(&g, u);
            for v in g.vertices() {
                prop_assert_eq!(comp.same(u, v), dist[v as usize] != UNREACHABLE,
                    "u={} v={}", u, v);
            }
        }
        // Sizes partition the vertex set.
        prop_assert_eq!(comp.sizes().iter().sum::<usize>(), n);
    }

    #[test]
    fn core_numbers_are_consistent((n, edges) in edges_strategy(30)) {
        let mut b = GraphBuilder::new(n);
        for (u, v) in edges { if u != v { b.add_edge(u, v); } }
        let g = b.build();
        let d = CoreDecomposition::of(&g);
        // Core number ≤ degree, and the k-core subgraph has min degree ≥ k
        // within itself.
        for v in g.vertices() {
            prop_assert!(d.core[v as usize] as usize <= g.degree(v));
        }
        for k in 1..=d.degeneracy {
            let core = d.k_core(k);
            for &v in &core {
                let deg_in = g.degree_within(v, &core);
                prop_assert!(deg_in >= k as usize,
                    "v={} k={} deg_in={}", v, k, deg_in);
            }
        }
        // The (degeneracy+1)-core is empty.
        prop_assert!(d.k_core(d.degeneracy + 1).is_empty());
    }

    #[test]
    fn snapshot_roundtrips_random_attributed_graphs(
        (n, edges) in edges_strategy(20),
        attrs in proptest::collection::vec((0u32..20, 0u32..8), 0..40),
    ) {
        let mut b = AttributedGraphBuilder::new(n);
        for (u, v) in edges { if u != v { b.add_edge(u, v); } }
        for a in 0..8u32 { b.intern_attr(&format!("attr-{a}")); }
        for (v, a) in attrs {
            if (v as usize) < n { b.add_attr(v, a); }
        }
        let g = b.build();
        let g2 = snapshot::decode(snapshot::encode(&g)).unwrap();
        prop_assert_eq!(g2.num_vertices(), g.num_vertices());
        prop_assert_eq!(g2.num_edges(), g.num_edges());
        prop_assert_eq!(g2.num_attributes(), g.num_attributes());
        for v in g.graph().vertices() {
            prop_assert_eq!(g2.attributes_of(v), g.attributes_of(v));
        }
        for (u, v) in g.graph().edges() {
            prop_assert!(g2.graph().has_edge(u, v));
        }
    }

    #[test]
    fn mapped_snapshot_agrees_with_owned_decode(
        (n, edges) in edges_strategy(20),
        attrs in proptest::collection::vec((0u32..20, 0u32..8), 0..40),
    ) {
        // The zero-copy reader and the heap decoder are two independent
        // implementations of the same format; for any graph they must
        // agree on every accessor — through both the v3 fast path and the
        // v2 heap-conversion fallback.
        let mut b = AttributedGraphBuilder::new(n);
        for (u, v) in edges { if u != v { b.add_edge(u, v); } }
        for a in 0..8u32 { b.intern_attr(&format!("attr-{a}")); }
        for (v, a) in attrs {
            if (v as usize) < n { b.add_attr(v, a); }
        }
        let g = b.build();
        let owned = snapshot::decode(snapshot::encode(&g)).unwrap();
        for bytes in [snapshot::encode(&g), snapshot::encode_v2(&g)] {
            let mapped = snapshot::MappedSnapshot::from_bytes(bytes).unwrap();
            mapped.validate().unwrap();
            prop_assert_eq!(mapped.num_vertices(), owned.num_vertices());
            prop_assert_eq!(mapped.num_edges(), owned.num_edges());
            prop_assert_eq!(mapped.num_attributes(), owned.num_attributes());
            for v in owned.graph().vertices() {
                prop_assert_eq!(mapped.neighbors(v).unwrap(), owned.graph().neighbors(v));
                prop_assert_eq!(mapped.attributes_of(v).unwrap(), owned.attributes_of(v));
            }
            for a in 0..owned.num_attributes() as u32 {
                prop_assert_eq!(mapped.vertices_with(a).unwrap(), owned.vertices_with(a));
                prop_assert_eq!(mapped.support(a).unwrap(), owned.support(a));
                prop_assert_eq!(mapped.attr_name(a).unwrap(), owned.attr_name(a));
            }
            let materialized = mapped.to_graph().unwrap();
            let (enc_mapped, enc_owned) =
                (snapshot::encode(&materialized), snapshot::encode(&owned));
            prop_assert_eq!(
                enc_mapped.as_ref(),
                enc_owned.as_ref(),
                "materialized graph drifted from the owned decode"
            );
        }
    }

    #[test]
    fn snapshot_decoder_never_panics_on_corruption(
        raw in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // Arbitrary bytes: decoding must return an error or a graph, never
        // panic. Three escalating shapes: raw noise (dies at the magic),
        // noise behind a valid header (dies at the checksum), and noise
        // behind a valid header *and* a resealed checksum (reaches the
        // structural validation layer).
        let _ = snapshot::decode(bytes::Bytes::from(raw.clone()));
        let mut with_header = b"SCPMSNAP".to_vec();
        with_header.extend_from_slice(&snapshot::VERSION.to_le_bytes());
        with_header.extend_from_slice(&raw);
        let _ = snapshot::decode(bytes::Bytes::from(with_header.clone()));
        let sum = snapshot::fnv1a64(&with_header);
        with_header.extend_from_slice(&sum.to_le_bytes());
        let _ = snapshot::decode(bytes::Bytes::from(with_header));
    }

    #[test]
    fn interchange_writers_and_parsers_roundtrip(
        (n, edges) in edges_strategy(20),
        attrs in proptest::collection::vec((0u32..20, 0u32..8), 0..40),
    ) {
        // Names deliberately include separators and quotes to exercise
        // the quoting layer.
        let names = ["plain", "two words", "comma,name", "q\"uote", "tab\tname",
                     "x", "y", "z"];
        let mut b = AttributedGraphBuilder::new(n);
        for (u, v) in edges { if u != v { b.add_edge(u, v); } }
        for name in names { b.intern_attr(name); }
        for (v, a) in attrs {
            if (v as usize) < n { b.add_attr(v, a); }
        }
        let g = b.build();

        let mut edge_buf = Vec::new();
        scpm_graph::io::write_edge_list(g.graph(), &mut edge_buf).unwrap();
        let mut attr_buf = Vec::new();
        scpm_graph::io::write_attr_table(&g, &mut attr_buf).unwrap();

        let mut src = scpm_graph::io::RawSource::new();
        src.read_edge_list(edge_buf.as_slice()).unwrap();
        src.read_attr_table(attr_buf.as_slice()).unwrap();

        // Vertex tokens are ids; every vertex appears in the attr table.
        prop_assert!(src.vertices.all_numeric());
        prop_assert_eq!(src.vertices.len(), n);
        prop_assert_eq!(src.edges.len(), g.num_edges());
        prop_assert_eq!(src.self_loops, 0);
        // Every pair survives with its exact name (quoting round-trips).
        let total_pairs: usize = g.graph().vertices()
            .map(|v| g.attributes_of(v).len()).sum();
        prop_assert_eq!(src.pairs.len(), total_pairs);
        for &(v, a) in &src.pairs {
            let vid: u32 = src.vertices.name(v).parse().unwrap();
            let name = src.attributes.name(a);
            let orig = g.attr_id(name);
            prop_assert!(orig.is_some(), "attribute {:?} lost", name);
            prop_assert!(g.attributes_of(vid).contains(&orig.unwrap()));
        }
    }
}
