//! Shared utilities of the experiment harness.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation (see DESIGN.md's experiment index); the Criterion
//! benches in `benches/` cover micro-level and ablation measurements.

#![warn(missing_docs)]

pub mod baseline;

use std::time::Instant;

/// Parses the `i`-th CLI argument as `f64`, with a default.
pub fn arg_f64(i: usize, default: f64) -> f64 {
    std::env::args()
        .nth(i)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Parses the `i`-th CLI argument as `usize`, with a default.
pub fn arg_usize(i: usize, default: usize) -> usize {
    std::env::args()
        .nth(i)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

/// Parses the `i`-th CLI argument as a string, with a default.
pub fn arg_str(i: usize, default: &str) -> String {
    std::env::args()
        .nth(i)
        .unwrap_or_else(|| default.to_string())
}

/// Measures one closure, returning `(result, seconds)`.
pub fn timed<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64())
}

/// Scales one of the paper's absolute thresholds (defined on the full
/// dataset) down to a scaled dataset, with a floor.
pub fn scaled_threshold(paper_value: f64, scale: f64, floor: usize) -> usize {
    ((paper_value * scale).round() as usize).max(floor)
}

/// Emits one tab-separated row to stdout (the harness output format; every
/// figure's series can be re-plotted from these rows).
pub fn tsv(fields: &[String]) {
    println!("{}", fields.join("\t"));
}

/// Convenience macro building a TSV row from display values.
#[macro_export]
macro_rules! row {
    ($($v:expr),+ $(,)?) => {
        $crate::tsv(&[$(format!("{}", $v)),+])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_threshold_floors() {
        assert_eq!(scaled_threshold(400.0, 0.1, 8), 40);
        assert_eq!(scaled_threshold(400.0, 0.001, 8), 8);
    }

    #[test]
    fn timed_returns_result() {
        let (v, secs) = timed(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }
}
