//! E-T2 — Table 2: top-10 attribute sets of the DBLP-like network by
//! support σ, structural correlation ε, and normalized structural
//! correlation δ_lb.
//!
//! ```text
//! cargo run --release -p scpm-bench --bin exp_table2_dblp [scale] [seed]
//! ```
//!
//! Paper parameters: min_size = 10, γmin = 0.5, σmin = 400 (scaled),
//! attribute sets of size ≥ 2 for the rankings. Expected shape: top-σ sets
//! are generic high-frequency terms with low ε; top-ε and top-δ sets are
//! topical (planted `*` topics), with δ_lb separating them most sharply.

use scpm_bench::{arg_f64, arg_usize, scaled_threshold, timed};
use scpm_core::report::{render_summary, render_top_tables};
use scpm_core::{Scpm, ScpmParams};
use scpm_datasets::dblp_like;

fn main() {
    let scale = arg_f64(1, 0.05);
    let seed = arg_usize(2, 42) as u64;
    let dataset = dblp_like(scale, seed);
    let graph = &dataset.graph;
    println!(
        "# dblp-like scale={scale} vertices={} edges={} attrs={}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.num_attributes()
    );
    let sigma_min = scaled_threshold(400.0, scale, 8);
    // Size-≥2 rankings as in the paper's Table 2; singletons still guide
    // the search.
    let params = ScpmParams::new(sigma_min, 0.5, 10)
        .with_min_attrs(2)
        .with_max_attrs(3)
        .with_top_k(5);
    println!("# sigma_min={sigma_min} gamma=0.5 min_size=10");
    let (result, secs) = timed(|| Scpm::new(graph, params).run());
    println!("{}", render_top_tables(graph, &result, 10));
    println!("# {}", render_summary(&result));
    println!("# elapsed={secs:.2}s");
}
