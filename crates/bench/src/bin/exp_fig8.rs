//! E-F8 — Figure 8: runtime of SCPM-BFS, SCPM-DFS and the Naive algorithm
//! on the SmallDBLP-like dataset, sweeping one parameter per panel:
//!
//! * (a) γmin, (b) min_size, (c) σmin, (d) εmin, (e) δmin, (f) top-k.
//!
//! ```text
//! cargo run --release -p scpm-bench --bin exp_fig8 [scale] [seed] [with_naive=1]
//! ```
//!
//! Expected shape (paper): SCPM-DFS fastest (up to orders of magnitude
//! over Naive), SCPM-BFS between, all runtimes dropping as thresholds
//! become more restrictive; small k gives SCPM-DFS a further edge.

use scpm_bench::{arg_f64, arg_usize, row, scaled_threshold, timed};
use scpm_core::{run_naive, Scpm, ScpmParams};
use scpm_datasets::small_dblp_like;
use scpm_graph::attributed::AttributedGraph;
use scpm_quasiclique::SearchOrder;

/// Figure 8 defaults (paper §4.2): γmin=0.5, min_size=11, σmin=100,
/// εmin=0.1, δmin=1, k=5.
#[derive(Clone, Copy)]
struct Defaults {
    gamma: f64,
    min_size: usize,
    sigma_min: usize,
    eps_min: f64,
    delta_min: f64,
    k: usize,
}

fn params_from(d: &Defaults) -> ScpmParams {
    ScpmParams::new(d.sigma_min, d.gamma, d.min_size)
        .with_eps_min(d.eps_min)
        .with_delta_min(d.delta_min)
        .with_top_k(d.k)
        .with_max_attrs(3)
}

fn measure(graph: &AttributedGraph, params: &ScpmParams, with_naive: bool) -> (f64, f64, f64) {
    let dfs = params.clone().with_order(SearchOrder::Dfs);
    let (_, t_dfs) = timed(|| Scpm::new(graph, dfs).run());
    let bfs = params.clone().with_order(SearchOrder::Bfs);
    let (_, t_bfs) = timed(|| Scpm::new(graph, bfs).run());
    let t_naive = if with_naive {
        let (_, t) = timed(|| run_naive(graph, params));
        t
    } else {
        f64::NAN
    };
    (t_dfs, t_bfs, t_naive)
}

fn main() {
    let scale = arg_f64(1, 0.05);
    let seed = arg_usize(2, 77) as u64;
    let with_naive = arg_usize(3, 1) == 1;
    let dataset = small_dblp_like(scale, seed);
    let graph = &dataset.graph;
    println!(
        "# small-dblp-like scale={scale} vertices={} edges={} attrs={}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.num_attributes()
    );
    let defaults = Defaults {
        gamma: 0.5,
        min_size: 11,
        sigma_min: scaled_threshold(100.0, scale, 5),
        eps_min: 0.1,
        delta_min: 1.0,
        k: 5,
    };
    println!(
        "# defaults: gamma=0.5 min_size=11 sigma_min={} eps_min=0.1 delta_min=1 k=5",
        defaults.sigma_min
    );
    println!("# columns: panel\tparam\tvalue\tscpm_dfs_s\tscpm_bfs_s\tnaive_s");

    // (a) runtime × γmin
    for gamma in [0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
        let p = params_from(&Defaults { gamma, ..defaults });
        let (d, b, n) = measure(graph, &p, with_naive);
        row!("fig8a", "gamma_min", gamma, fmt(d), fmt(b), fmt(n));
    }
    // (b) runtime × min_size
    for min_size in [11, 12, 13, 14, 15] {
        let p = params_from(&Defaults {
            min_size,
            ..defaults
        });
        let (d, b, n) = measure(graph, &p, with_naive);
        row!("fig8b", "min_size", min_size, fmt(d), fmt(b), fmt(n));
    }
    // (c) runtime × σmin (paper sweeps 150–350 on SmallDBLP)
    for paper_sigma in [150.0, 200.0, 250.0, 300.0, 350.0] {
        let sigma_min = scaled_threshold(paper_sigma, scale, 5);
        let p = params_from(&Defaults {
            sigma_min,
            ..defaults
        });
        let (d, b, n) = measure(graph, &p, with_naive);
        row!("fig8c", "sigma_min", sigma_min, fmt(d), fmt(b), fmt(n));
    }
    // (d) runtime × εmin
    for eps_min in [0.1, 0.15, 0.2, 0.25] {
        let p = params_from(&Defaults {
            eps_min,
            ..defaults
        });
        let (d, b, n) = measure(graph, &p, with_naive);
        row!("fig8d", "eps_min", eps_min, fmt(d), fmt(b), fmt(n));
    }
    // (e) runtime × δmin
    for delta_min in [10.0, 20.0, 30.0, 40.0, 50.0] {
        let p = params_from(&Defaults {
            delta_min,
            ..defaults
        });
        let (d, b, n) = measure(graph, &p, with_naive);
        row!("fig8e", "delta_min", delta_min, fmt(d), fmt(b), fmt(n));
    }
    // (f) runtime × k (paper: SCPM-DFS vs Naive; BFS identical strategy)
    for k in [1, 2, 4, 8, 16] {
        let p = params_from(&Defaults { k, ..defaults });
        let (d, _, n) = measure(graph, &p, false);
        let naive = if with_naive {
            let (_, t) = timed(|| run_naive(graph, &p));
            t
        } else {
            n
        };
        row!("fig8f", "k", k, fmt(d), "-", fmt(naive));
    }
}

fn fmt(v: f64) -> String {
    if v.is_nan() {
        "-".to_string()
    } else {
        format!("{v:.4}")
    }
}
