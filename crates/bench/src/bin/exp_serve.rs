//! E-SERVE — catalog-service latency smoke: start an in-process
//! `scpm serve` server on a DBLP-style graph, drive every read endpoint
//! over the loopback socket, measure per-endpoint request latency, time a
//! full `POST /mine` generation swap, and verify the served catalog is
//! byte-identical to a fresh batch run.
//!
//! ```text
//! cargo run --release -p scpm-bench --bin exp_serve [scale] [seed] [requests] [threads]
//! ```
//!
//! Emits one TSV row per endpoint (`endpoint  requests  p50_us  p99_us
//! mean_us`) plus `remine` and `identity` rows, and exits nonzero if the
//! byte-identity check fails — CI runs this as the serve end-to-end smoke.
//!
//! The smoke then POSTs a graph delta to `/update` and verifies the live
//! incremental path end to end: the generation must bump by one and the
//! served catalog must be byte-identical to a fresh batch mine of the
//! updated graph (see `docs/INCREMENTAL.md`).
//!
//! Finally it exercises the durability path: a `--data-dir`-style server
//! is killed (no shutdown checkpoint) right after an acknowledged update,
//! and reopening the data directory must replay the journal into a
//! byte-identical catalog (`restart_identity` row, see
//! `docs/DURABILITY.md`).

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use scpm_bench::{arg_f64, arg_usize, row, timed};
use scpm_core::{NullModelCache, ParallelConfig, Scpm, ScpmParams};
use scpm_datasets::dblp_like;
use scpm_graph::{DeltaOp, GraphDelta};
use scpm_serve::{Client, DurabilityConfig, PatternCatalog, ServeConfig, Server};

fn params() -> ScpmParams {
    ScpmParams::new(8, 0.5, 6)
        .with_eps_min(0.1)
        .with_top_k(3)
        .with_max_attrs(2)
}

/// Runs `n` requests against one target and emits its latency row.
fn measure(client: &Client, target: &str, n: usize) -> Result<(), String> {
    let mut micros = Vec::with_capacity(n);
    for _ in 0..n {
        let start = Instant::now();
        let response = client.get(target).map_err(|e| format!("{target}: {e}"))?;
        if response.status != 200 {
            return Err(format!("{target}: status {}", response.status));
        }
        micros.push(start.elapsed().as_micros() as u64);
    }
    micros.sort_unstable();
    let mean = micros.iter().sum::<u64>() / n.max(1) as u64;
    row!(target, n, micros[n / 2], micros[(n * 99) / 100], mean);
    Ok(())
}

fn main() -> ExitCode {
    let scale = arg_f64(1, 0.01);
    let seed = arg_usize(2, 42) as u64;
    let requests = arg_usize(3, 200);
    let threads = arg_usize(4, 4);

    println!("# exp_serve scale={scale} seed={seed} requests={requests} threads={threads}");
    println!("endpoint\trequests\tp50_us\tp99_us\tmean_us");

    let graph = dblp_like(scale, seed).graph;
    let reference_graph = graph.clone();

    let (server, secs) =
        timed(|| Server::start(graph, ServeConfig::new(params(), threads)).expect("server start"));
    row!("startup_mine", 1, "-", "-", format!("{:.0}", secs * 1e6));
    let client = Client::new(server.addr());

    // A mid-catalog attribute pair for the point-query endpoints.
    let catalog = server.catalog();
    let attrs_query = catalog
        .full_json()
        .get("reports")
        .and_then(|r| r.as_array().map(|a| a.to_vec()))
        .and_then(|reports| {
            reports.iter().rev().find_map(|r| {
                r.get("attrs")?.as_array().map(|names| {
                    names
                        .iter()
                        .filter_map(|n| n.as_str().map(str::to_string))
                        .collect::<Vec<_>>()
                        .join(",")
                })
            })
        })
        .unwrap_or_else(|| "?".into());

    let endpoints = [
        "/health".to_string(),
        "/stats".to_string(),
        "/top?by=delta&k=10".to_string(),
        format!("/patterns?attrs={attrs_query}"),
        "/patterns/covering?v=0".to_string(),
        "/reports?delta_min=1.0".to_string(),
        "/catalog".to_string(),
    ];
    for target in &endpoints {
        if let Err(e) = measure(&client, target, requests) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }

    // One full generation swap, timed end to end over the socket.
    let start = Instant::now();
    let response = client.post("/mine", "{}").expect("re-mine");
    let remine_us = start.elapsed().as_micros() as u64;
    if response.status != 200 {
        eprintln!("error: POST /mine returned {}", response.status);
        return ExitCode::FAILURE;
    }
    row!("remine_swap", 1, "-", "-", remine_us);

    // Byte-identity: the served catalog equals a fresh batch run.
    let served = client
        .get("/catalog")
        .expect("catalog")
        .result()
        .expect("result payload")
        .render();
    let p = params();
    let result = Scpm::with_cache(&reference_graph, p.clone(), Arc::new(NullModelCache::new()))
        .run_scheduled(&ParallelConfig::new(1));
    let batch = PatternCatalog::build(&reference_graph, &p, result, 0)
        .full_json()
        .render();
    let identical = served == batch;
    row!(
        "identity",
        1,
        "-",
        "-",
        if identical { "ok" } else { "MISMATCH" }
    );

    // Live delta over the socket: POST /update must bump the generation
    // and leave the served catalog byte-identical to a batch mine of the
    // updated graph.
    let gen_before = response.generation().expect("mine generation");
    let n = reference_graph.num_vertices() as u32;
    let attr = reference_graph.attr_name(0).to_string();
    let body =
        format!("{{\"add_vertices\": 1, \"edges\": [[0, {n}]], \"attrs\": [[{n}, \"{attr}\"]]}}");
    let start = Instant::now();
    let update = client.post("/update", &body).expect("update");
    let update_us = start.elapsed().as_micros() as u64;
    if update.status != 200 {
        eprintln!(
            "error: POST /update returned {}: {}",
            update.status, update.body
        );
        return ExitCode::FAILURE;
    }
    row!("update_swap", 1, "-", "-", update_us);
    let gen_after = update.generation().expect("update generation");
    if gen_after != gen_before + 1 {
        eprintln!("error: /update bumped generation {gen_before} -> {gen_after}, expected +1");
        return ExitCode::FAILURE;
    }

    let delta = GraphDelta {
        ops: vec![
            DeltaOp::AddVertices(1),
            DeltaOp::AddEdge(0, n),
            DeltaOp::AddAttr(n, attr),
        ],
    };
    let updated = delta.apply(&reference_graph).expect("apply delta").graph;
    let result = Scpm::with_cache(&updated, p.clone(), Arc::new(NullModelCache::new()))
        .run_scheduled(&ParallelConfig::new(1));
    let batch_updated = PatternCatalog::build(&updated, &p, result, 0)
        .full_json()
        .render();
    let served_updated = client
        .get("/catalog")
        .expect("catalog after update")
        .result()
        .expect("result payload")
        .render();
    let update_identical = served_updated == batch_updated;
    row!(
        "update_identity",
        1,
        "-",
        "-",
        if update_identical { "ok" } else { "MISMATCH" }
    );

    server.stop();

    // Kill-and-restart: abort a durable server (no shutdown checkpoint)
    // right after an acknowledged update, then reopen the data directory.
    // Recovery must replay the journaled delta into a catalog that is
    // byte-identical to the one served before the kill.
    let data_dir = std::env::temp_dir().join(format!("scpm_exp_serve_{seed}"));
    let _ = std::fs::remove_dir_all(&data_dir);
    let durable_config = || {
        ServeConfig::new(params(), threads)
            .with_durability(DurabilityConfig::new(&data_dir).with_checkpoint_every(1_000_000))
    };
    let durable =
        Server::start(reference_graph.clone(), durable_config()).expect("durable server start");
    let durable_client = Client::new(durable.addr());
    let update = durable_client
        .post("/update", &body)
        .expect("durable update");
    if update.status != 200 {
        eprintln!(
            "error: durable POST /update returned {}: {}",
            update.status, update.body
        );
        return ExitCode::FAILURE;
    }
    let before_kill = durable.catalog().full_json().render();
    durable.abort();
    let start = Instant::now();
    let (reopened, report) = Server::open(durable_config()).expect("reopen data dir");
    let recover_us = start.elapsed().as_micros() as u64;
    row!("restart_recover", 1, "-", "-", recover_us);
    let after_restart = reopened.catalog().full_json().render();
    reopened.stop();
    let _ = std::fs::remove_dir_all(&data_dir);
    let restart_identical = report.replayed_deltas == 1 && before_kill == after_restart;
    row!(
        "restart_identity",
        1,
        "-",
        "-",
        if restart_identical { "ok" } else { "MISMATCH" }
    );

    if identical && update_identical && restart_identical {
        ExitCode::SUCCESS
    } else {
        if !identical {
            eprintln!("error: served catalog differs from batch mine");
        }
        if !update_identical {
            eprintln!("error: updated catalog differs from batch mine of the updated graph");
        }
        if !restart_identical {
            eprintln!(
                "error: catalog after kill-and-restart differs (replayed {} deltas)",
                report.replayed_deltas
            );
        }
        ExitCode::FAILURE
    }
}
