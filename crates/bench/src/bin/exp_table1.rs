//! E-T1 — Table 1: the complete pattern set of the Figure 1 example under
//! σmin = 3, γmin = 0.6, min_size = 4, εmin = 0.5.
//!
//! ```text
//! cargo run --release -p scpm-bench --bin exp_table1
//! ```

use scpm_core::{Scpm, ScpmParams};
use scpm_graph::figure1::{figure1, paper_label};

fn main() {
    let graph = figure1();
    let params = ScpmParams::new(3, 0.6, 4).with_eps_min(0.5);
    let result = Scpm::new(&graph, params).run();

    println!("# Table 1: pattern\tsize\tgamma\tsigma\tepsilon");
    let mut rows: Vec<String> = result
        .patterns
        .iter()
        .map(|p| {
            let report = result.report_for(&p.attrs).expect("report exists");
            let labels: Vec<String> = p
                .clique
                .vertices
                .iter()
                .map(|&v| paper_label(v).to_string())
                .collect();
            format!(
                "({},{{{}}})\t{}\t{:.2}\t{}\t{:.2}",
                graph.format_attr_set(&p.attrs),
                labels.join(","),
                p.clique.size(),
                p.clique.min_degree_ratio,
                report.support,
                report.epsilon
            )
        })
        .collect();
    rows.sort();
    for row in rows {
        println!("{row}");
    }
    println!(
        "# paper reports 7 patterns; found {}",
        result.patterns.len()
    );
}
