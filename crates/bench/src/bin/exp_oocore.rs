//! E-OOCORE — the out-of-core memory-budget gate: a large synthetic
//! graph is ingested through the bounded-memory external pass and mined
//! through the zero-copy mapped path, and both must be **byte-identical**
//! to the unbudgeted in-memory pipeline — while the budgeted process
//! keeps its peak RSS under an explicit ceiling.
//!
//! Two phases so CI can clamp only the phase under test:
//!
//! ```text
//! # Phase 1 (no limits): materialize sources + the unbudgeted reference.
//! cargo run --release -p scpm-bench --bin exp_oocore -- reference \
//!     [scale] [seed] [work_dir]
//!
//! # Phase 2 (run under `ulimit -v`): budgeted ingest + mmap mine.
//! cargo run --release -p scpm-bench --bin exp_oocore -- budgeted \
//!     [scale] [seed] [work_dir] [budget_bytes] [max_peak_rss_bytes]
//! ```
//!
//! The reference phase writes the interchange files, the in-memory
//! snapshot (`reference.snap`) and a fingerprint of the in-memory mining
//! run (`reference.fp`: FNV-1a of the reports+patterns debug rendering,
//! plus the counts). The budgeted phase re-ingests the same files under
//! `budget_bytes` via `scpm_datasets::external`, byte-compares the
//! snapshots chunk by chunk (never holding either in memory), mines the
//! external snapshot with `scpm_core::segments::mine_mapped` under the
//! same budget, compares fingerprints, and finally reads `VmHWM` from
//! `/proc/self/status` — exiting nonzero on any divergence or when the
//! high-water mark exceeds `max_peak_rss_bytes` (0 = don't assert; the
//! measurement is still printed).
//!
//! Mining parameters are derived deterministically from the vertex count
//! (both phases see the same graph, so both derive the same parameters).

use std::io::Read;
use std::path::Path;
use std::process::ExitCode;

use scpm_bench::{arg_f64, arg_str, arg_usize, row, timed};
use scpm_core::{mine_mapped, Scpm, ScpmParams, ScpmResult};
use scpm_datasets::ingest::{ingest_files, IngestOptions, SourceFormat};
use scpm_datasets::{citeseer_like, ingest_files_external, ExternalOptions};
use scpm_graph::io::{write_attr_table, write_edge_list};
use scpm_graph::{fnv1a64, save_snapshot, MappedSnapshot};

/// Paper-shaped thresholds scaled to the graph: σmin grows with `n` so
/// the lattice stays tractable at every scale.
fn params_for(n: usize) -> ScpmParams {
    ScpmParams::new((n / 150).max(16), 0.5, 8)
        .with_eps_min(0.1)
        .with_top_k(3)
        .with_max_attrs(2)
}

/// Everything a run reports except wall-clock, as one comparable hash.
fn fingerprint(r: &ScpmResult) -> u64 {
    fnv1a64(format!("{:?}|{:?}", r.reports, r.patterns).as_bytes())
}

/// `VmHWM` (peak resident set) of this process, in bytes.
fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb * 1024)
}

/// Chunked byte comparison, O(1) memory.
fn files_identical(a: &Path, b: &Path) -> std::io::Result<bool> {
    let (ma, mb) = (std::fs::metadata(a)?, std::fs::metadata(b)?);
    if ma.len() != mb.len() {
        return Ok(false);
    }
    let (mut fa, mut fb) = (std::fs::File::open(a)?, std::fs::File::open(b)?);
    let (mut ba, mut bb) = (vec![0u8; 64 << 10], vec![0u8; 64 << 10]);
    loop {
        let na = fa.read(&mut ba)?;
        if na == 0 {
            return Ok(true);
        }
        fb.read_exact(&mut bb[..na])?;
        if ba[..na] != bb[..na] {
            return Ok(false);
        }
    }
}

fn reference(scale: f64, seed: u64, dir: &Path) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let (dataset, secs) = timed(|| citeseer_like(scale, seed));
    let graph = dataset.graph;
    row!(
        "generate",
        format!("{secs:.3}"),
        format!(
            "n={} m={} attrs={}",
            graph.num_vertices(),
            graph.num_edges(),
            graph.num_attributes()
        )
    );

    let edges_path = dir.join("oocore.edges");
    let attrs_path = dir.join("oocore.attrs");
    let (written, secs) = timed(|| -> Result<(), String> {
        write_edge_list(
            graph.graph(),
            std::io::BufWriter::new(std::fs::File::create(&edges_path).map_err(|e| e.to_string())?),
        )
        .map_err(|e| e.to_string())?;
        write_attr_table(
            &graph,
            std::io::BufWriter::new(std::fs::File::create(&attrs_path).map_err(|e| e.to_string())?),
        )
        .map_err(|e| e.to_string())
    });
    written?;
    row!(
        "write-interchange",
        format!("{secs:.3}"),
        "oocore.edges + oocore.attrs"
    );
    drop(graph); // Ingest below re-parses from disk; don't double-hold.

    // The unbudgeted reference pipeline: buffered parse → normalize →
    // snapshot. This is the memory-hungry path the budgeted phase must
    // reproduce byte for byte.
    let (ingested, secs) = timed(|| {
        ingest_files(
            SourceFormat::EdgeList,
            &edges_path,
            Some(attrs_path.as_path()),
            &IngestOptions::default(),
        )
    });
    let ingested = ingested.map_err(|e| e.to_string())?;
    let snap_path = dir.join("reference.snap");
    save_snapshot(&ingested.graph, &snap_path).map_err(|e| e.to_string())?;
    row!(
        "ingest-in-memory",
        format!("{secs:.3}"),
        format!(
            "snapshot {} bytes",
            std::fs::metadata(&snap_path).map(|m| m.len()).unwrap_or(0)
        )
    );

    let params = params_for(ingested.graph.num_vertices());
    let (result, secs) = timed(|| Scpm::new(&ingested.graph, params.clone()).run());
    let fp = fingerprint(&result);
    std::fs::write(
        dir.join("reference.fp"),
        format!(
            "{fp:016x} {} {}\n",
            result.reports.len(),
            result.patterns.len()
        ),
    )
    .map_err(|e| e.to_string())?;
    row!(
        "mine-in-memory",
        format!("{secs:.3}"),
        format!(
            "sigma_min={} reports={} patterns={} fp={fp:016x}",
            params.sigma_min,
            result.reports.len(),
            result.patterns.len()
        )
    );
    if let Some(rss) = peak_rss_bytes() {
        row!("peak-rss", "-", format!("{rss} bytes (reference phase)"));
    }
    Ok(())
}

fn budgeted(scale: f64, seed: u64, dir: &Path, budget: usize, max_rss: u64) -> Result<(), String> {
    row!(
        "budget",
        "-",
        format!("{budget} bytes (scale={scale} seed={seed})")
    );
    let edges_path = dir.join("oocore.edges");
    let attrs_path = dir.join("oocore.attrs");
    let ext_path = dir.join("external.snap");
    let (report, secs) = timed(|| {
        ingest_files_external(
            SourceFormat::EdgeList,
            &edges_path,
            Some(attrs_path.as_path()),
            &IngestOptions::default(),
            &ExternalOptions {
                memory_budget: budget,
                temp_dir: None,
            },
            &ext_path,
        )
    });
    let report = report.map_err(|e| e.to_string())?;
    row!(
        "ingest-budgeted",
        format!("{secs:.3}"),
        format!(
            "n={} m={} pairs={}",
            report.vertices, report.edges, report.pairs
        )
    );

    let identical = files_identical(&ext_path, &dir.join("reference.snap"))
        .map_err(|e| format!("comparing snapshots: {e}"))?;
    row!("snapshot-identical", "-", identical);
    if !identical {
        return Err("budgeted snapshot diverges from the in-memory reference".into());
    }

    let snap = MappedSnapshot::open(&ext_path).map_err(|e| e.to_string())?;
    let params = params_for(snap.num_vertices());
    let (result, secs) = timed(|| mine_mapped(&snap, params.clone(), budget));
    let result = result.map_err(|e| e.to_string())?;
    let fp = fingerprint(&result);
    row!(
        "mine-mmap",
        format!("{secs:.3}"),
        format!(
            "sigma_min={} reports={} patterns={} fp={fp:016x} zero_copy={}",
            params.sigma_min,
            result.reports.len(),
            result.patterns.len(),
            snap.is_zero_copy()
        )
    );
    let want = std::fs::read_to_string(dir.join("reference.fp"))
        .map_err(|e| format!("reading reference.fp: {e}"))?;
    let want_fp = want.split_whitespace().next().unwrap_or("");
    if want_fp != format!("{fp:016x}") {
        return Err(format!(
            "mmap mine diverges from the in-memory reference (fresh {fp:016x}, reference {want_fp})"
        ));
    }
    row!("mine-identical", "-", true);

    let rss = peak_rss_bytes().ok_or("cannot read VmHWM from /proc/self/status")?;
    row!(
        "peak-rss",
        "-",
        format!(
            "{rss} bytes (ceiling {max_rss}; snapshot on disk {} bytes)",
            std::fs::metadata(&ext_path).map(|m| m.len()).unwrap_or(0)
        )
    );
    if max_rss > 0 && rss > max_rss {
        return Err(format!("peak RSS {rss} exceeds the {max_rss}-byte ceiling"));
    }
    Ok(())
}

fn main() -> ExitCode {
    let mode = arg_str(1, "");
    let scale = arg_f64(2, 1.6);
    let seed = arg_usize(3, 42) as u64;
    let dir = arg_str(4, "");
    if dir.is_empty() {
        eprintln!("# ERROR: usage: exp_oocore reference|budgeted <scale> <seed> <work_dir> [budget_bytes] [max_peak_rss_bytes]");
        return ExitCode::from(2);
    }
    let dir = std::path::PathBuf::from(dir);
    println!("# exp_oocore {mode} scale={scale} seed={seed}");
    println!("stage\tseconds\tdetail");
    let outcome = match mode.as_str() {
        "reference" => reference(scale, seed, &dir),
        "budgeted" => {
            let budget = arg_usize(5, 32 << 20);
            let max_rss = arg_usize(6, 0) as u64;
            budgeted(scale, seed, &dir, budget, max_rss)
        }
        other => Err(format!("unknown mode `{other}` (want reference|budgeted)")),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("# ERROR: {e}");
            ExitCode::FAILURE
        }
    }
}
