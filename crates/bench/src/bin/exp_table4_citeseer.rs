//! E-T4 — Table 4: top-10 attribute sets of the CiteSeer-like network.
//!
//! ```text
//! cargo run --release -p scpm-bench --bin exp_table4_citeseer [scale] [seed]
//! ```
//!
//! Paper parameters: min_size = 5, γmin = 0.5, σmin = 2,000 (scaled).
//! Expected shape: generic terms (`system`, `paper`, ...) lead the σ
//! column with low ε; topical sets (networking, caching, ...) lead ε and
//! δ_lb.

use scpm_bench::{arg_f64, arg_usize, scaled_threshold, timed};
use scpm_core::report::{render_summary, render_top_tables};
use scpm_core::{Scpm, ScpmParams};
use scpm_datasets::citeseer_like;

fn main() {
    let scale = arg_f64(1, 0.02);
    let seed = arg_usize(2, 2718) as u64;
    let dataset = citeseer_like(scale, seed);
    let graph = &dataset.graph;
    println!(
        "# citeseer-like scale={scale} vertices={} edges={} attrs={}",
        graph.num_vertices(),
        graph.num_edges(),
        graph.num_attributes()
    );
    let sigma_min = scaled_threshold(2_000.0, scale, 10);
    let params = ScpmParams::new(sigma_min, 0.5, 5)
        .with_min_attrs(1)
        .with_max_attrs(3)
        .with_top_k(5);
    println!("# sigma_min={sigma_min} gamma=0.5 min_size=5");
    let (result, secs) = timed(|| Scpm::new(graph, params).run());
    println!("{}", render_top_tables(graph, &result, 10));
    println!("# {}", render_summary(&result));
    println!("# elapsed={secs:.2}s");
}
