//! E-INGEST — end-to-end ingestion pipeline check: materialize a
//! DBLP-style dataset as the on-disk interchange files real releases ship
//! in (edge list + vertex→attribute table), push them through the full
//! pipeline (parse → normalize → snapshot encode → decode → parallel SCPM
//! run), and verify the mined report is **byte-identical** to mining the
//! same graph constructed in memory.
//!
//! ```text
//! cargo run --release -p scpm-bench --bin exp_ingest [scale] [seed] [threads]
//! ```
//!
//! Emits one TSV row per pipeline stage (`stage  seconds  detail`) and
//! exits nonzero if any equivalence check fails — CI runs this as the
//! ingestion smoke test.

use std::process::ExitCode;

use scpm_bench::{arg_f64, arg_usize, row, timed};
use scpm_core::report::{render_patterns, render_top_tables};
use scpm_core::{run_parallel_with, ParallelConfig, Scpm, ScpmParams};
use scpm_datasets::ingest::{canonicalize_attributes, ingest_files, IngestOptions, SourceFormat};
use scpm_datasets::{dblp_like, ingest_cached};
use scpm_graph::io::{write_attr_table, write_edge_list};
use scpm_graph::snapshot;
use scpm_graph::AttributedGraph;

fn params() -> ScpmParams {
    ScpmParams::new(8, 0.5, 6)
        .with_eps_min(0.1)
        .with_top_k(3)
        .with_max_attrs(2)
}

/// The full rendered report (tables + patterns). The run summary is
/// excluded: it contains wall-clock timings.
fn report_of(g: &AttributedGraph, result: &scpm_core::ScpmResult) -> String {
    format!(
        "{}\n{}",
        render_top_tables(g, result, 10),
        render_patterns(g, result, 10)
    )
}

fn main() -> ExitCode {
    let scale = arg_f64(1, 0.01);
    let seed = arg_usize(2, 42) as u64;
    let threads = arg_usize(3, 2);
    let dir = std::env::temp_dir().join(format!("scpm_exp_ingest_{seed}"));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create work dir");

    println!("# exp_ingest scale={scale} seed={seed} threads={threads}");
    println!("stage\tseconds\tdetail");

    // Generate the reference dataset in memory.
    let (dataset, secs) = timed(|| dblp_like(scale, seed));
    let graph = dataset.graph;
    row!(
        "generate",
        format!("{secs:.3}"),
        format!(
            "n={} m={} attrs={}",
            graph.num_vertices(),
            graph.num_edges(),
            graph.num_attributes()
        )
    );

    // Materialize the on-disk release shape. Plain (non-atomic) creates
    // are fine: these files are regenerated at the top of every run and
    // consumed only below, so a torn write costs a re-run, not state.
    let edges_path = dir.join("dblp.edges");
    let attrs_path = dir.join("dblp.attrs");
    let (_, secs) = timed(|| {
        write_edge_list(
            graph.graph(),
            std::fs::File::create(&edges_path).expect("create edge file"),
        )
        .expect("write edge list");
        write_attr_table(
            &graph,
            std::fs::File::create(&attrs_path).expect("create attr file"),
        )
        .expect("write attr table");
    });
    let disk_bytes = std::fs::metadata(&edges_path).map(|m| m.len()).unwrap_or(0)
        + std::fs::metadata(&attrs_path).map(|m| m.len()).unwrap_or(0);
    row!(
        "write-files",
        format!("{secs:.3}"),
        format!("{disk_bytes} bytes")
    );

    // Ingest: parse + normalize.
    let (ingested, secs) = timed(|| {
        ingest_files(
            SourceFormat::EdgeList,
            &edges_path,
            Some(&attrs_path),
            &IngestOptions::default(),
        )
        .expect("ingest")
    });
    let parse = ingested.report.parse.clone().unwrap_or_default();
    row!(
        "ingest",
        format!("{secs:.3}"),
        format!(
            "numeric_ids={} dup_edges={} dup_pairs={}",
            ingested.report.numeric_ids, parse.duplicate_edges_merged, parse.duplicate_pairs_merged
        )
    );

    // Snapshot round-trip. Atomic write: this snapshot is read back (and
    // may be reused as a cache), so it must never exist in a torn state.
    let snap_path = dir.join("dblp.snap");
    let (bytes, secs) = timed(|| snapshot::encode(&ingested.graph));
    scpm_graph::write_atomic(&snap_path, &bytes).expect("write snapshot");
    row!(
        "encode",
        format!("{secs:.3}"),
        format!("{} bytes", bytes.len())
    );
    let (loaded, secs) = timed(|| snapshot::load_snapshot(&snap_path).expect("load snapshot"));
    row!("decode", format!("{secs:.3}"), "checksum verified");

    // Mine the ingested path (parallel driver) and the in-memory path
    // (serial driver) — the suite guarantees those agree bit-for-bit.
    let config = ParallelConfig::new(threads);
    let (from_disk, secs) = timed(|| run_parallel_with(&loaded, params(), &config));
    row!(
        "mine-ingested",
        format!("{secs:.3}"),
        format!("patterns={}", from_disk.patterns.len())
    );
    let reference = canonicalize_attributes(&graph);
    let (in_memory, secs) = timed(|| Scpm::new(&reference, params()).run());
    row!(
        "mine-in-memory",
        format!("{secs:.3}"),
        format!("patterns={}", in_memory.patterns.len())
    );

    // Byte-identical verification: snapshots and rendered reports.
    let mut failures = 0;
    let snap_identical = snapshot::encode(&reference).as_ref() == bytes.as_ref();
    if !snap_identical {
        eprintln!("FAIL: ingested snapshot differs from in-memory snapshot");
        failures += 1;
    }
    let report_disk = report_of(&loaded, &from_disk);
    let report_mem = report_of(&reference, &in_memory);
    let report_identical = report_disk == report_mem;
    if !report_identical {
        eprintln!("FAIL: mined reports differ\n--- ingested ---\n{report_disk}\n--- in-memory ---\n{report_mem}");
        failures += 1;
    }
    row!(
        "verify",
        "0.000",
        format!("snapshot_identical={snap_identical} report_identical={report_identical}")
    );

    // Cached re-ingest must hit and reproduce the same graph.
    let cache_dir = dir.join("cache");
    let opts = IngestOptions::default();
    let (first, hit1) = ingest_cached(
        &cache_dir,
        SourceFormat::EdgeList,
        &edges_path,
        Some(&attrs_path),
        &opts,
    )
    .expect("cold ingest_cached");
    let ((second, hit2), secs) = timed(|| {
        ingest_cached(
            &cache_dir,
            SourceFormat::EdgeList,
            &edges_path,
            Some(&attrs_path),
            &opts,
        )
        .expect("warm ingest_cached")
    });
    let cache_ok =
        !hit1 && hit2 && snapshot::encode(&first).as_ref() == snapshot::encode(&second).as_ref();
    if !cache_ok {
        eprintln!("FAIL: ingest cache did not hit or returned a different graph");
        failures += 1;
    }
    row!("cache-reload", format!("{secs:.3}"), format!("hit={hit2}"));

    std::fs::remove_dir_all(&dir).ok();
    if failures == 0 {
        println!("# OK: raw files → snapshot → mine is byte-identical to the in-memory path");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
