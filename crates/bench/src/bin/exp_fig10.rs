//! E-F10 — Figure 10: parameter sensitivity. Average ε and δ of the
//! complete output (global) and of the top-10% attribute sets on the
//! SmallDBLP-like dataset, varying γmin (a, d), min_size (b, e) and σmin
//! (c, f).
//!
//! ```text
//! cargo run --release -p scpm-bench --bin exp_fig10 [scale] [seed] [threads]
//! ```
//!
//! The sweep runs through the work-stealing driver (`threads` workers;
//! output is bit-identical to the serial run at any thread count) and all
//! 18 runs share one null-model cache, so each `exp(σ)` value is computed
//! once across the whole figure.
//!
//! Expected shape (paper): more restrictive quasi-clique parameters
//! (higher γmin / min_size) reduce average ε but can *increase* average δ
//! (dense subgraphs become less expected); higher σmin raises average ε
//! but lowers average δ because high-support sets also have high expected
//! correlation.

use std::sync::Arc;

use scpm_bench::{arg_f64, arg_usize, row, scaled_threshold};
use scpm_core::{NullModelCache, ParallelConfig, Scpm, ScpmParams, ScpmResult};
use scpm_datasets::small_dblp_like;
use scpm_graph::attributed::AttributedGraph;

/// Averages a metric globally and over its top-10% reports.
fn averages(
    result: &ScpmResult,
    metric: impl Fn(&scpm_core::AttributeSetReport) -> f64,
) -> (f64, f64) {
    let mut values: Vec<f64> = result
        .reports
        .iter()
        .map(&metric)
        .filter(|v| v.is_finite())
        .collect();
    if values.is_empty() {
        return (0.0, 0.0);
    }
    values.sort_by(|a, b| b.partial_cmp(a).unwrap());
    let global = values.iter().sum::<f64>() / values.len() as f64;
    let top = (values.len() / 10).max(1);
    let top10 = values[..top].iter().sum::<f64>() / top as f64;
    (global, top10)
}

fn run(
    graph: &AttributedGraph,
    sigma_min: usize,
    gamma: f64,
    min_size: usize,
    config: &ParallelConfig,
    cache: &Arc<NullModelCache>,
) -> ScpmResult {
    // Sensitivity runs need the *complete* output: no ε/δ thresholds, no
    // per-set pattern mining (k = 0 keeps it cheap). The shared cache keys
    // by (z, σ), so all 18 runs pool their exp(σ) evaluations.
    let params = ScpmParams::new(sigma_min, gamma, min_size)
        .with_top_k(0)
        .with_max_attrs(2);
    Scpm::with_cache(graph, params, cache.clone()).run_scheduled(config)
}

fn emit(panel_eps: &str, panel_delta: &str, param: &str, value: String, result: &ScpmResult) {
    let (eps_global, eps_top) = averages(result, |r| r.epsilon);
    let (delta_global, delta_top) = averages(result, |r| r.delta_lb);
    row!(
        panel_eps,
        param,
        value.clone(),
        format!("{eps_global:.5}"),
        format!("{eps_top:.5}")
    );
    row!(
        panel_delta,
        param,
        value,
        format!("{delta_global:.5e}"),
        format!("{delta_top:.5e}")
    );
}

fn main() {
    let scale = arg_f64(1, 0.05);
    let seed = arg_usize(2, 77) as u64;
    let threads = arg_usize(3, 1);
    let dataset = small_dblp_like(scale, seed);
    let graph = &dataset.graph;
    let config = ParallelConfig::new(threads);
    let cache = Arc::new(NullModelCache::new());
    println!(
        "# small-dblp-like scale={scale} vertices={} edges={} threads={threads}",
        graph.num_vertices(),
        graph.num_edges()
    );
    // Figure 10 defaults: γmin = 0.5, min_size = 10, σmin = 100 (scaled).
    let sigma_default = scaled_threshold(100.0, scale, 5);
    println!("# defaults: gamma=0.5 min_size=10 sigma_min={sigma_default}");
    println!("# columns: panel\tparam\tvalue\tglobal\ttop10pct");

    // (a)+(d): γmin sweep.
    for gamma in [0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
        let result = run(graph, sigma_default, gamma, 10, &config, &cache);
        emit(
            "fig10a_eps",
            "fig10d_delta",
            "gamma_min",
            format!("{gamma}"),
            &result,
        );
    }
    // (b)+(e): min_size sweep.
    for min_size in [10, 11, 12, 13, 14, 15] {
        let result = run(graph, sigma_default, 0.5, min_size, &config, &cache);
        emit(
            "fig10b_eps",
            "fig10e_delta",
            "min_size",
            format!("{min_size}"),
            &result,
        );
    }
    // (c)+(f): σmin sweep (paper: 100–350).
    for paper_sigma in [100.0, 150.0, 200.0, 250.0, 300.0, 350.0] {
        let sigma_min = scaled_threshold(paper_sigma, scale, 5);
        let result = run(graph, sigma_min, 0.5, 10, &config, &cache);
        emit(
            "fig10c_eps",
            "fig10f_delta",
            "sigma_min",
            format!("{sigma_min}"),
            &result,
        );
    }
    eprintln!(
        "# null-model cache: {} entries, {} hits, {} misses",
        cache.len(),
        cache.hits(),
        cache.misses()
    );
}
