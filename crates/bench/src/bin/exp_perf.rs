//! E-PERF — tracked performance baseline: sorted-slice vs packed-bitset
//! hot path across a six-workload scenario matrix, under fixed seeds.
//!
//! ```text
//! cargo run --release -p scpm-bench --bin exp_perf \
//!     [dblp_scale] [lastfm_scale] [out.json] [--no-timing] \
//!     [--scenario-scale F] [--check BASELINE.json]
//! ```
//!
//! The matrix covers the shapes that stress different kernels (the
//! workload taxonomy follows the significance-testing benchmarks of Lee
//! et al., arXiv:1609.08266): the DBLP/Last.fm stand-ins plus a
//! dense-clique stress (wide candidate sets, full rows), a sparse-star
//! graph (hub-and-spoke, empty-block skipping dominates), and a
//! skewed-attribute distribution (head attributes induce wide subgraphs,
//! tail attributes tiny ones), plus a CiteSeer-shaped citation graph an
//! order of magnitude above the rest — the in-RAM sibling of the
//! out-of-core `exp_oocore` gate. For each workload the full SCPM run
//! executes twice — once with `Representation::Slice`, once with
//! `Representation::Bitset` — and the binary **exits nonzero unless the
//! two outcomes (reports + patterns) are byte-identical**. Wall-clock
//! plus the hardware-independent counters (qc-search nodes, point edge
//! tests, modeled kernel operations, fused-kernel calls, summary blocks
//! skipped) land in a v2 JSON file whose per-workload `thresholds` carry
//! the regression contract; the file is committed at the repo root as
//! `BENCH_scpm.json` (see `docs/PERFORMANCE.md`).
//!
//! After the matrix, a **streaming** scenario chains four deterministic
//! graph deltas (attribute churn on the head attribute, in-subgraph
//! edges, wired-in vertices, a pure no-op append) over the DBLP workload:
//! each step runs the incremental miner off the chained evaluation memo
//! side by side with a full re-mine and the binary exits nonzero unless
//! the two catalogs are byte-identical **and** the incremental run
//! evaluated strictly fewer lattice nodes live (see
//! `docs/INCREMENTAL.md`). Dirty-region sizes and the full/incremental
//! kernel-op ratio land in a `streaming` section of the JSON.
//!
//! `--check BASELINE.json` turns the binary into the CI perf-regression
//! gate: each workload recorded in the baseline is re-run at its recorded
//! scale and compared — **exactly** on outcomes (`qc_nodes`, `reports`,
//! `patterns`, slice/bitset identity) and within the baseline's
//! per-workload tolerance ratio on bitset `kernel_ops`; the fresh
//! slice/bitset ratio must also clear the baseline's floor. Any violation
//! exits nonzero.
//!
//! Determinism: every seed is a compile-time constant and the scales are
//! plain CLI flags — there is no `SystemTime`-derived input anywhere, so
//! with `--no-timing` (which zeroes the `wall_secs` fields) repeated runs
//! produce byte-identical JSON. CI diffs two back-to-back runs to enforce
//! exactly that.

use std::process::ExitCode;
use std::sync::Arc;

use scpm_bench::baseline::{parse_baseline, WorkloadBaseline};
use scpm_bench::timed;
use scpm_core::{
    DirtySet, IncrementalCtx, NullModelCache, ParallelConfig, Scpm, ScpmParams, ScpmResult,
};
use scpm_datasets::{
    citeseer_like, dblp_like, dense_clique_like, lastfm_like, skewed_attr_like, sparse_star_like,
    SyntheticDataset,
};
use scpm_graph::bitadj::{detect_kernel_backend, simd_compiled, KernelBackend};
use scpm_graph::{AttributedGraph, DeltaOp, GraphDelta};
use scpm_quasiclique::Representation;

/// One row of the scenario matrix: a seeded generator plus the
/// paper-shaped mining parameters and the regression thresholds the
/// baseline carries for it.
struct Scenario {
    name: &'static str,
    /// Fixed workload seed (never derived from the clock).
    seed: u64,
    /// Generator scale when none is imposed by a `--check` baseline.
    default_scale: f64,
    generate: fn(f64, u64) -> SyntheticDataset,
    params: ScpmParams,
    /// Multiplicative slack on bitset `kernel_ops` for `--check`.
    kernel_ops_tolerance: f64,
    /// Floor on the slice/bitset kernel-ops ratio for `--check`.
    min_kernel_ops_ratio: f64,
}

/// The six-workload matrix. Order is the report order; names are the
/// join keys `--check` uses against the baseline file.
fn scenarios(dblp_scale: f64, lastfm_scale: f64, scenario_scale: f64) -> Vec<Scenario> {
    vec![
        Scenario {
            name: "dblp",
            seed: 42,
            default_scale: dblp_scale,
            generate: dblp_like,
            params: ScpmParams::new(8, 0.5, 8)
                .with_eps_min(0.1)
                .with_top_k(3)
                .with_max_attrs(3),
            kernel_ops_tolerance: 1.05,
            min_kernel_ops_ratio: 4.0,
        },
        Scenario {
            name: "lastfm",
            seed: 7,
            default_scale: lastfm_scale,
            generate: lastfm_like,
            params: ScpmParams::new(8, 0.5, 5)
                .with_eps_min(0.1)
                .with_top_k(4)
                .with_max_attrs(2),
            kernel_ops_tolerance: 1.05,
            min_kernel_ops_ratio: 4.0,
        },
        Scenario {
            name: "dense-clique",
            seed: 11,
            default_scale: 0.02 * scenario_scale,
            generate: dense_clique_like,
            params: ScpmParams::new(10, 0.6, 8)
                .with_eps_min(0.1)
                .with_top_k(3)
                .with_max_attrs(2),
            kernel_ops_tolerance: 1.05,
            min_kernel_ops_ratio: 2.7,
        },
        Scenario {
            name: "sparse-star",
            seed: 13,
            default_scale: 0.03 * scenario_scale,
            generate: sparse_star_like,
            params: ScpmParams::new(8, 0.5, 4)
                .with_eps_min(0.1)
                .with_top_k(3)
                .with_max_attrs(2),
            kernel_ops_tolerance: 1.05,
            min_kernel_ops_ratio: 2.0,
        },
        Scenario {
            name: "skewed-attr",
            seed: 17,
            default_scale: 0.02 * scenario_scale,
            generate: skewed_attr_like,
            params: ScpmParams::new(10, 0.5, 6)
                .with_eps_min(0.1)
                .with_top_k(3)
                .with_max_attrs(2),
            kernel_ops_tolerance: 1.05,
            min_kernel_ops_ratio: 2.6,
        },
        // An order of magnitude above the rest of the matrix: a
        // CiteSeer-shaped citation graph in the tens of thousands of
        // vertices, the in-RAM sibling of the out-of-core gate
        // (`exp_oocore` mines the same generator at ~1M edges under a
        // memory budget and reports peak RSS; this row keeps the tracked
        // kernel counters honest at a scale where wide subgraphs dominate
        // the hot loops).
        Scenario {
            name: "large-citeseer",
            seed: 23,
            default_scale: 0.15 * scenario_scale,
            generate: citeseer_like,
            params: ScpmParams::new(400, 0.5, 8)
                .with_eps_min(0.1)
                .with_top_k(3)
                .with_max_attrs(2),
            kernel_ops_tolerance: 1.05,
            min_kernel_ops_ratio: 1.3,
        },
    ]
}

struct PathResult {
    wall_secs: f64,
    result: ScpmResult,
}

struct WorkloadReport {
    name: &'static str,
    scale: f64,
    seed: u64,
    vertices: usize,
    edges: usize,
    attributes: usize,
    slice: PathResult,
    bitset: PathResult,
    identical: bool,
    /// Divergence message from the SIMD cross-check pass, if it ran and
    /// failed (`None` = passed or not compiled/available).
    simd_divergence: Option<String>,
    kernel_ops_tolerance: f64,
    min_kernel_ops_ratio: f64,
}

/// Everything a run reports except wall-clock, as one comparable string.
fn fingerprint(r: &ScpmResult) -> String {
    format!("{:?}|{:?}", r.reports, r.patterns)
}

fn run_workload(scenario: &Scenario, scale: f64, timing: bool) -> WorkloadReport {
    let dataset = (scenario.generate)(scale, scenario.seed);
    let g = &dataset.graph;
    let run = |repr: Representation| {
        // One warm-up pass (page-in, allocator steady state), then the
        // timed pass — single-shot cold timings on a shared container are
        // too noisy to track.
        let p = scenario.params.clone().with_repr(repr);
        if timing {
            let _ = Scpm::new(g, p.clone()).run();
        }
        let (result, secs) = timed(|| Scpm::new(g, p).run());
        PathResult {
            wall_secs: if timing { secs } else { 0.0 },
            result,
        }
    };
    let slice = run(Representation::Slice);
    let bitset = run(Representation::Bitset);
    let identical = fingerprint(&slice.result) == fingerprint(&bitset.result);
    // When the `simd` feature is compiled in and a non-scalar backend is
    // actually available on this machine, a third pass runs the same
    // workload through `Representation::Simd` and must match the scalar
    // bitset pass on outcomes AND on every counter (the word-count model
    // is backend-independent). The JSON stays byte-identical across
    // feature configurations: the cross-check only gates the exit code.
    let simd_divergence = if simd_compiled() && detect_kernel_backend() != KernelBackend::Scalar {
        let simd = run(Representation::Simd);
        if fingerprint(&simd.result) != fingerprint(&bitset.result) {
            Some(format!("{}: simd/bitset outcomes diverge", scenario.name))
        } else {
            let strip = |s: &scpm_core::ScpmStats| {
                let mut s = *s;
                s.elapsed = std::time::Duration::ZERO;
                s
            };
            let (a, b) = (strip(&simd.result.stats), strip(&bitset.result.stats));
            (a != b).then(|| {
                format!(
                    "{}: simd/bitset counters diverge: {a:?} != {b:?}",
                    scenario.name
                )
            })
        }
    } else {
        None
    };
    WorkloadReport {
        name: scenario.name,
        scale,
        seed: scenario.seed,
        vertices: g.num_vertices(),
        edges: g.num_edges(),
        attributes: g.num_attributes(),
        slice,
        bitset,
        identical,
        simd_divergence,
        kernel_ops_tolerance: scenario.kernel_ops_tolerance,
        min_kernel_ops_ratio: scenario.min_kernel_ops_ratio,
    }
}

fn json_path(p: &PathResult) -> String {
    let s = &p.result.stats;
    format!(
        concat!(
            "{{\"wall_secs\": {:.6}, \"qc_nodes\": {}, \"edge_tests\": {}, ",
            "\"kernel_ops\": {}, \"fused_ops\": {}, \"blocks_skipped\": {}, ",
            "\"probes_elided\": {}, \"batch_ops\": {}, ",
            "\"reports\": {}, \"patterns\": {}}}"
        ),
        p.wall_secs,
        s.qc_nodes_coverage + s.qc_nodes_topk,
        s.qc_edge_tests,
        s.qc_kernel_ops,
        s.qc_fused_ops,
        s.qc_blocks_skipped,
        s.qc_probes_elided,
        s.qc_batch_ops,
        p.result.reports.len(),
        p.result.patterns.len()
    )
}

fn ratio(slice: u64, bitset: u64) -> f64 {
    slice as f64 / bitset.max(1) as f64
}

fn report_ratio(w: &WorkloadReport) -> f64 {
    ratio(
        w.slice.result.stats.qc_kernel_ops,
        w.bitset.result.stats.qc_kernel_ops,
    )
}

fn json_workload(w: &WorkloadReport) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"name\": \"{}\",\n",
            "      \"scale\": {},\n",
            "      \"seed\": {},\n",
            "      \"vertices\": {},\n",
            "      \"edges\": {},\n",
            "      \"attributes\": {},\n",
            "      \"slice\": {},\n",
            "      \"bitset\": {},\n",
            "      \"kernel_ops_ratio\": {:.4},\n",
            "      \"thresholds\": {{\"kernel_ops_tolerance\": {}, \"min_kernel_ops_ratio\": {}}},\n",
            "      \"outcomes_identical\": {}\n",
            "    }}"
        ),
        w.name,
        w.scale,
        w.seed,
        w.vertices,
        w.edges,
        w.attributes,
        json_path(&w.slice),
        json_path(&w.bitset),
        report_ratio(w),
        w.kernel_ops_tolerance,
        w.min_kernel_ops_ratio,
        w.identical
    )
}

fn render(
    reports: &[WorkloadReport],
    streaming: &StreamingReport,
    min_ratio: f64,
    ok: bool,
) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"version\": 2,\n",
            "  \"harness\": \"exp_perf\",\n",
            "  \"counters\": {{\n",
            "    \"qc_nodes\": \"set-enumeration nodes visited (coverage + top-k)\",\n",
            "    \"edge_tests\": \"point adjacency/membership queries in the hot loops\",\n",
            "    \"kernel_ops\": \"modeled work: slice elements touched vs bitset u64 words touched\",\n",
            "    \"fused_ops\": \"fused single-pass kernel invocations (bitset path only)\",\n",
            "    \"blocks_skipped\": \"8-word blocks skipped via the VertexBitset summary hierarchy\",\n",
            "    \"probes_elided\": \"point probes answered in bulk by the batched row-AND promotion sweeps\",\n",
            "    \"batch_ops\": \"u64 words touched by the batched promotion sweeps (subset of kernel_ops)\"\n",
            "  }},\n",
            "  \"workloads\": [\n{}\n  ],\n",
            "{},\n",
            "  \"summary\": {{\"min_kernel_ops_ratio\": {:.4}, \"all_outcomes_identical\": {}}}\n",
            "}}\n"
        ),
        reports
            .iter()
            .map(json_workload)
            .collect::<Vec<_>>()
            .join(",\n"),
        json_streaming(streaming),
        min_ratio,
        ok
    )
}

/// One step of the streaming scenario: a delta mined incrementally off
/// the chained memo, side by side with a full re-mine of the same graph.
struct StreamingStep {
    dirty_attrs: usize,
    edge_caps: usize,
    /// Lattice nodes the full re-mine evaluates.
    examined_full: u64,
    /// Lattice nodes the incremental run evaluated live.
    reevaluated: u64,
    /// Lattice nodes the incremental run replayed from the memo.
    reused: u64,
    full_kernel_ops: u64,
    live_kernel_ops: u64,
    reused_kernel_ops: u64,
    wall_full: f64,
    wall_incremental: f64,
    /// Incremental catalog byte-identical to the full re-mine.
    identical: bool,
    /// Incremental evaluated strictly fewer lattice nodes live.
    strictly_fewer: bool,
}

struct StreamingReport {
    scale: f64,
    seed: u64,
    steps: Vec<StreamingStep>,
}

impl StreamingReport {
    fn ok(&self) -> bool {
        self.steps.iter().all(|s| s.identical && s.strictly_fewer)
    }
}

/// A deterministic four-delta stream derived from the graph itself (no
/// clock, no RNG): churn on the highest-support attribute, edges inside
/// its subgraph, new vertices wired into it, and a pure no-op append.
fn streaming_deltas(g: &AttributedGraph) -> Vec<GraphDelta> {
    let top = (0..g.num_attributes() as u32)
        .max_by_key(|&a| g.support(a))
        .expect("graph has attributes");
    let name = g.attr_name(top).to_string();
    let vs: Vec<u32> = g.vertices_with(top).to_vec();
    let n = g.num_vertices() as u32;
    assert!(vs.len() >= 4, "head attribute too small for the stream");
    let lacking: Vec<u32> = (0..n).filter(|v| !vs.contains(v)).take(3).collect();
    vec![
        // Novel assignments of the head attribute: V(S) changes for every
        // S containing it.
        GraphDelta {
            ops: lacking
                .iter()
                .map(|&v| DeltaOp::AddAttr(v, name.clone()))
                .collect(),
        },
        // Edges inside the head subgraph: G(S) changes where both
        // endpoints share S (duplicates of existing edges are no-ops).
        GraphDelta {
            ops: vec![
                DeltaOp::AddEdge(vs[0], vs[vs.len() / 2]),
                DeltaOp::AddEdge(vs[1], vs[vs.len() - 1]),
            ],
        },
        // Two new vertices wired into the head subgraph and labeled.
        GraphDelta {
            ops: vec![
                DeltaOp::AddVertices(2),
                DeltaOp::AddEdge(n, vs[0]),
                DeltaOp::AddEdge(n + 1, vs[1]),
                DeltaOp::AddEdge(n, n + 1),
                DeltaOp::AddAttr(n, name.clone()),
                DeltaOp::AddAttr(n + 1, name),
            ],
        },
        // An isolated attribute-free vertex: dirties nothing at all.
        GraphDelta {
            ops: vec![DeltaOp::AddVertices(1)],
        },
    ]
}

/// Runs the streaming scenario: records a memo on the base mine, then for
/// each delta compares the chained incremental update against a full
/// re-mine — byte-identical outcomes, strictly fewer live evaluations.
fn run_streaming(scale: f64, timing: bool) -> StreamingReport {
    let seed = 42;
    let params = ScpmParams::new(8, 0.5, 8)
        .with_eps_min(0.1)
        .with_top_k(3)
        .with_max_attrs(3);
    let config = ParallelConfig::new(1);
    let base = dblp_like(scale, seed).graph;
    let deltas = streaming_deltas(&base);
    let mut scpm = Scpm::with_cache(&base, params.clone(), Arc::new(NullModelCache::new()))
        .with_incremental(IncrementalCtx::recording());
    let _ = scpm.run_scheduled(&config);
    let (mut memo, _) = scpm.take_incremental().expect("recording ctx").into_parts();
    let mut current = base;
    let mut steps = Vec::new();
    for delta in &deltas {
        let applied = delta.apply(&current).expect("well-formed delta");
        let (full, full_secs) = timed(|| {
            Scpm::with_cache(
                &applied.graph,
                params.clone(),
                Arc::new(NullModelCache::new()),
            )
            .run_scheduled(&config)
        });
        let dirty = DirtySet::from_delta(&applied.graph, &applied);
        let dirty_attrs = dirty.dirty_attr_ids().len();
        let edge_caps = dirty.num_edge_caps();
        let mut scpm = Scpm::with_cache(
            &applied.graph,
            params.clone(),
            Arc::new(NullModelCache::new()),
        )
        .with_incremental(IncrementalCtx::update(Arc::new(memo), dirty));
        let (incremental, inc_secs) = timed(|| scpm.run_scheduled(&config));
        let (new_memo, stats) = scpm.take_incremental().expect("update ctx").into_parts();
        let examined_full = full.stats.attribute_sets_examined;
        steps.push(StreamingStep {
            dirty_attrs,
            edge_caps,
            examined_full,
            reevaluated: stats.reevaluated,
            reused: stats.reused,
            full_kernel_ops: full.stats.qc_kernel_ops,
            live_kernel_ops: stats.live_kernel_ops,
            reused_kernel_ops: stats.reused_kernel_ops,
            wall_full: if timing { full_secs } else { 0.0 },
            wall_incremental: if timing { inc_secs } else { 0.0 },
            identical: fingerprint(&full) == fingerprint(&incremental),
            strictly_fewer: stats.reevaluated < examined_full,
        });
        memo = new_memo;
        current = applied.graph;
    }
    StreamingReport { scale, seed, steps }
}

fn json_streaming(r: &StreamingReport) -> String {
    let steps = r
        .steps
        .iter()
        .map(|s| {
            format!(
                concat!(
                    "      {{\"dirty_attrs\": {}, \"edge_caps\": {}, ",
                    "\"examined_full\": {}, \"reevaluated\": {}, \"reused\": {}, ",
                    "\"full_kernel_ops\": {}, \"live_kernel_ops\": {}, ",
                    "\"reused_kernel_ops\": {}, \"kernel_ops_ratio\": {:.4}, ",
                    "\"wall_full\": {:.6}, \"wall_incremental\": {:.6}, ",
                    "\"identical\": {}, \"strictly_fewer\": {}}}"
                ),
                s.dirty_attrs,
                s.edge_caps,
                s.examined_full,
                s.reevaluated,
                s.reused,
                s.full_kernel_ops,
                s.live_kernel_ops,
                s.reused_kernel_ops,
                ratio(s.full_kernel_ops, s.live_kernel_ops),
                s.wall_full,
                s.wall_incremental,
                s.identical,
                s.strictly_fewer
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        concat!(
            "  \"streaming\": {{\n",
            "    \"workload\": \"dblp\",\n",
            "    \"scale\": {},\n",
            "    \"seed\": {},\n",
            "    \"steps\": [\n{}\n    ],\n",
            "    \"summary\": {{\"all_identical\": {}, \"all_strictly_fewer\": {}}}\n",
            "  }}"
        ),
        r.scale,
        r.seed,
        steps,
        r.steps.iter().all(|s| s.identical),
        r.steps.iter().all(|s| s.strictly_fewer)
    )
}

/// Compares one fresh workload run against its committed baseline entry.
/// Returns the violation messages (empty = pass).
fn check_workload(w: &WorkloadReport, base: &WorkloadBaseline) -> Vec<String> {
    let mut errs = Vec::new();
    let fresh = &w.bitset.result;
    let s = &fresh.stats;
    let qc_nodes = s.qc_nodes_coverage + s.qc_nodes_topk;
    if !w.identical {
        errs.push(format!("{}: slice/bitset outcomes diverge", w.name));
    }
    if w.seed != base.seed {
        errs.push(format!(
            "{}: compiled-in seed {} != baseline seed {}",
            w.name, w.seed, base.seed
        ));
    }
    for (what, got, want) in [
        ("qc_nodes", qc_nodes, base.qc_nodes),
        ("reports", fresh.reports.len() as u64, base.reports),
        ("patterns", fresh.patterns.len() as u64, base.patterns),
    ] {
        if got != want {
            errs.push(format!(
                "{}: {what} changed: fresh {got} != baseline {want} (outcome drift)",
                w.name
            ));
        }
    }
    let limit = (base.kernel_ops as f64 * base.kernel_ops_tolerance).ceil() as u64;
    if s.qc_kernel_ops > limit {
        errs.push(format!(
            "{}: kernel_ops regressed: fresh {} > baseline {} x tolerance {} = {}",
            w.name, s.qc_kernel_ops, base.kernel_ops, base.kernel_ops_tolerance, limit
        ));
    }
    // The probe-bottleneck contract: total modeled work including the
    // residual point probes. Guards against regressions that trade
    // kernel_ops for edge_tests (or vice versa) without showing up in
    // either counter alone.
    let combined = s.qc_kernel_ops + s.qc_edge_tests;
    let base_combined = base.kernel_ops + base.edge_tests;
    let combined_limit = (base_combined as f64 * base.kernel_ops_tolerance).ceil() as u64;
    if combined > combined_limit {
        errs.push(format!(
            "{}: kernel_ops+edge_tests regressed: fresh {} > baseline {} x tolerance {} = {}",
            w.name, combined, base_combined, base.kernel_ops_tolerance, combined_limit
        ));
    }
    if let Some(msg) = &w.simd_divergence {
        errs.push(msg.clone());
    }
    let r = report_ratio(w);
    if r < base.min_kernel_ops_ratio {
        errs.push(format!(
            "{}: slice/bitset kernel_ops ratio {:.3} below floor {:.3}",
            w.name, r, base.min_kernel_ops_ratio
        ));
    }
    errs
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let timing = !args.iter().any(|a| a == "--no-timing");
    // Split flags (and their values) from positionals so a flag can
    // appear at any position without eating a positional slot. Strict on
    // purpose: a flag missing its value or a mistyped flag must fail
    // loudly, never degrade into a baseline-overwriting normal run.
    let mut check_path: Option<String> = None;
    let mut scenario_scale = 1.0f64;
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--no-timing" => {}
            "--check" => match it.next() {
                Some(p) => check_path = Some(p.clone()),
                None => {
                    eprintln!("# ERROR: --check requires a baseline path");
                    return ExitCode::FAILURE;
                }
            },
            "--scenario-scale" => match it.next().and_then(|s| s.parse().ok()) {
                Some(f) => scenario_scale = f,
                None => {
                    eprintln!("# ERROR: --scenario-scale requires a numeric value");
                    return ExitCode::FAILURE;
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("# ERROR: unknown flag {flag}");
                return ExitCode::FAILURE;
            }
            _ => positional.push(a.clone()),
        }
    }
    if positional.len() > 3 {
        eprintln!(
            "# ERROR: expected at most 3 positionals (dblp_scale lastfm_scale out.json), got {positional:?}"
        );
        return ExitCode::FAILURE;
    }
    let pos_f64 = |i: usize, default: f64| -> Result<f64, String> {
        match positional.get(i) {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| format!("# ERROR: positional {} is not a number: {s}", i + 1)),
        }
    };
    let (dblp_scale, lastfm_scale) = match (pos_f64(0, 0.02), pos_f64(1, 0.01)) {
        (Ok(d), Ok(l)) => (d, l),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // In check mode the fresh JSON defaults to a scratch file under the
    // system temp dir — never silently overwrite the committed baseline
    // being checked against, and never leave an untracked file dirtying
    // the repo root after a local `--check` run. CI passes an explicit
    // third positional when it wants the file as an artifact.
    let out_path = positional.get(2).cloned().unwrap_or_else(|| {
        if check_path.is_some() {
            std::env::temp_dir()
                .join("BENCH_check.json")
                .display()
                .to_string()
        } else {
            "BENCH_scpm.json".to_string()
        }
    });

    eprintln!(
        "# kernel backend: simd_compiled={} detected={}",
        simd_compiled(),
        detect_kernel_backend().name()
    );
    let matrix = scenarios(dblp_scale, lastfm_scale, scenario_scale);
    let baseline = match &check_path {
        Some(path) => match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
            Ok(text) => match parse_baseline(&text) {
                Ok(ws) => Some(ws),
                Err(e) => {
                    eprintln!("# ERROR: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("# ERROR: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    // In check mode, run exactly the baseline's workloads at the
    // baseline's scales; otherwise the full matrix at CLI scales.
    let mut reports: Vec<WorkloadReport> = Vec::new();
    let mut check_errs: Vec<String> = Vec::new();
    match &baseline {
        Some(entries) => {
            for base in entries {
                let Some(scenario) = matrix.iter().find(|s| s.name == base.name) else {
                    check_errs.push(format!("unknown baseline workload \"{}\"", base.name));
                    continue;
                };
                let w = run_workload(scenario, base.scale, timing);
                check_errs.extend(check_workload(&w, base));
                reports.push(w);
            }
        }
        None => {
            for scenario in &matrix {
                reports.push(run_workload(scenario, scenario.default_scale, timing));
            }
        }
    }

    // The streaming scenario runs in both modes: its invariants (byte
    // identity with a full re-mine, strictly fewer live evaluations) are
    // verified fresh on every run rather than compared to a baseline.
    let streaming = run_streaming(dblp_scale, timing);
    for (i, s) in streaming.steps.iter().enumerate() {
        eprintln!(
            "# streaming step {}: dirty_attrs={} edge_caps={} | full examined={} kernel_ops={} | incremental live={} reused={} live_kernel_ops={} | identical={} strictly_fewer={}",
            i,
            s.dirty_attrs,
            s.edge_caps,
            s.examined_full,
            s.full_kernel_ops,
            s.reevaluated,
            s.reused,
            s.live_kernel_ops,
            s.identical,
            s.strictly_fewer
        );
    }

    let mut ok = streaming.ok();
    if !ok {
        eprintln!("# ERROR: streaming scenario violated an incremental invariant");
    }
    for w in &reports {
        let b = &w.bitset.result.stats;
        eprintln!(
            "# {}: V={} E={} | slice kernel_ops={} bitset kernel_ops={} ratio={:.2}x | edge_tests={} probes_elided={} batch_ops={} | identical={}",
            w.name,
            w.vertices,
            w.edges,
            w.slice.result.stats.qc_kernel_ops,
            b.qc_kernel_ops,
            report_ratio(w),
            b.qc_edge_tests,
            b.qc_probes_elided,
            b.qc_batch_ops,
            w.identical
        );
        if !w.identical {
            eprintln!("# ERROR: {} slice/bitset outcomes diverge", w.name);
            ok = false;
        }
        if let Some(msg) = &w.simd_divergence {
            eprintln!("# ERROR: {msg}");
            ok = false;
        }
    }

    let min_ratio = reports
        .iter()
        .map(report_ratio)
        .fold(f64::INFINITY, f64::min);
    let body = render(&reports, &streaming, min_ratio, ok);
    // Atomic write: BENCH.md is diffed against a checked-in baseline, so
    // a torn report must never masquerade as a complete run.
    if let Err(e) = scpm_graph::write_atomic(std::path::Path::new(&out_path), body.as_bytes()) {
        eprintln!("# ERROR: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("# wrote {out_path} (min kernel_ops ratio {min_ratio:.2}x)");

    if baseline.is_some() {
        if check_errs.is_empty() {
            eprintln!(
                "# check PASSED against {} ({} workloads)",
                check_path.as_deref().unwrap_or(""),
                reports.len()
            );
        } else {
            for e in &check_errs {
                eprintln!("# CHECK FAILED: {e}");
            }
            return ExitCode::FAILURE;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
