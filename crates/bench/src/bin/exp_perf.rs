//! E-PERF — tracked performance baseline: sorted-slice vs packed-bitset
//! hot path on the synthetic DBLP/Last.fm stand-ins, under fixed seeds.
//!
//! ```text
//! cargo run --release -p scpm-bench --bin exp_perf \
//!     [dblp_scale] [lastfm_scale] [out.json] [--no-timing]
//! ```
//!
//! For each workload the full SCPM run executes twice — once with
//! `Representation::Slice`, once with `Representation::Bitset` — and the
//! binary **exits nonzero unless the two outcomes (reports + patterns) are
//! byte-identical**. Wall-clock plus the hardware-independent counters
//! (qc-search nodes, point edge tests, modeled kernel operations = slice
//! elements touched vs bitset words touched) land in a JSON file, which is
//! committed at the repo root as `BENCH_scpm.json` to track the
//! baseline-vs-bitset trajectory across PRs (see `docs/PERFORMANCE.md`).
//!
//! Determinism: every seed is a compile-time constant and the scales are
//! plain CLI flags — there is no `SystemTime`-derived input anywhere, so
//! with `--no-timing` (which zeroes the `wall_secs` fields) repeated runs
//! produce byte-identical JSON. CI diffs two back-to-back runs to enforce
//! exactly that.

use std::process::ExitCode;

use scpm_bench::{arg_f64, arg_str, timed};
use scpm_core::{Scpm, ScpmParams, ScpmResult};
use scpm_datasets::{dblp_like, lastfm_like, SyntheticDataset};
use scpm_quasiclique::Representation;

/// Fixed workload seeds (never derived from the clock).
const DBLP_SEED: u64 = 42;
const LASTFM_SEED: u64 = 7;

struct PathResult {
    wall_secs: f64,
    result: ScpmResult,
}

struct WorkloadReport {
    name: &'static str,
    scale: f64,
    seed: u64,
    vertices: usize,
    edges: usize,
    attributes: usize,
    slice: PathResult,
    bitset: PathResult,
    identical: bool,
}

/// Everything a run reports except wall-clock, as one comparable string.
fn fingerprint(r: &ScpmResult) -> String {
    format!("{:?}|{:?}", r.reports, r.patterns)
}

fn run_workload(
    name: &'static str,
    dataset: &SyntheticDataset,
    scale: f64,
    seed: u64,
    params: &ScpmParams,
    timing: bool,
) -> WorkloadReport {
    let g = &dataset.graph;
    let run = |repr: Representation| {
        // One warm-up pass (page-in, allocator steady state), then the
        // timed pass — single-shot cold timings on a shared container are
        // too noisy to track.
        let p = params.clone().with_repr(repr);
        if timing {
            let _ = Scpm::new(g, p.clone()).run();
        }
        let (result, secs) = timed(|| Scpm::new(g, p).run());
        PathResult {
            wall_secs: if timing { secs } else { 0.0 },
            result,
        }
    };
    let slice = run(Representation::Slice);
    let bitset = run(Representation::Bitset);
    let identical = fingerprint(&slice.result) == fingerprint(&bitset.result);
    WorkloadReport {
        name,
        scale,
        seed,
        vertices: g.num_vertices(),
        edges: g.num_edges(),
        attributes: g.num_attributes(),
        slice,
        bitset,
        identical,
    }
}

fn json_path(p: &PathResult) -> String {
    let s = &p.result.stats;
    format!(
        concat!(
            "{{\"wall_secs\": {:.6}, \"qc_nodes\": {}, \"edge_tests\": {}, ",
            "\"kernel_ops\": {}, \"reports\": {}, \"patterns\": {}}}"
        ),
        p.wall_secs,
        s.qc_nodes_coverage + s.qc_nodes_topk,
        s.qc_edge_tests,
        s.qc_kernel_ops,
        p.result.reports.len(),
        p.result.patterns.len()
    )
}

fn ratio(slice: u64, bitset: u64) -> f64 {
    slice as f64 / bitset.max(1) as f64
}

fn json_workload(w: &WorkloadReport) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"name\": \"{}\",\n",
            "      \"scale\": {},\n",
            "      \"seed\": {},\n",
            "      \"vertices\": {},\n",
            "      \"edges\": {},\n",
            "      \"attributes\": {},\n",
            "      \"slice\": {},\n",
            "      \"bitset\": {},\n",
            "      \"kernel_ops_ratio\": {:.4},\n",
            "      \"outcomes_identical\": {}\n",
            "    }}"
        ),
        w.name,
        w.scale,
        w.seed,
        w.vertices,
        w.edges,
        w.attributes,
        json_path(&w.slice),
        json_path(&w.bitset),
        ratio(
            w.slice.result.stats.qc_kernel_ops,
            w.bitset.result.stats.qc_kernel_ops
        ),
        w.identical
    )
}

fn main() -> ExitCode {
    let dblp_scale = arg_f64(1, 0.02);
    let lastfm_scale = arg_f64(2, 0.01);
    // `--no-timing` is recognized at any position; a flag mistakenly
    // landing in the out-path slot must not become a file name.
    let timing = !std::env::args().any(|a| a == "--no-timing");
    let out_path = match arg_str(3, "BENCH_scpm.json") {
        p if p.starts_with("--") => "BENCH_scpm.json".to_string(),
        p => p,
    };

    // The paper-shaped parameters the repo's other experiments use for
    // these stand-ins (exp_speedup / the tier-1 determinism sweep).
    let dblp_params = ScpmParams::new(8, 0.5, 8)
        .with_eps_min(0.1)
        .with_top_k(3)
        .with_max_attrs(3);
    let lastfm_params = ScpmParams::new(8, 0.5, 5)
        .with_eps_min(0.1)
        .with_top_k(4)
        .with_max_attrs(2);

    let dblp = dblp_like(dblp_scale, DBLP_SEED);
    let lastfm = lastfm_like(lastfm_scale, LASTFM_SEED);
    let reports = vec![
        run_workload("dblp", &dblp, dblp_scale, DBLP_SEED, &dblp_params, timing),
        run_workload(
            "lastfm",
            &lastfm,
            lastfm_scale,
            LASTFM_SEED,
            &lastfm_params,
            timing,
        ),
    ];

    let mut ok = true;
    for w in &reports {
        let r = ratio(
            w.slice.result.stats.qc_kernel_ops,
            w.bitset.result.stats.qc_kernel_ops,
        );
        eprintln!(
            "# {}: V={} E={} | slice kernel_ops={} bitset kernel_ops={} ratio={:.2}x | identical={}",
            w.name,
            w.vertices,
            w.edges,
            w.slice.result.stats.qc_kernel_ops,
            w.bitset.result.stats.qc_kernel_ops,
            r,
            w.identical
        );
        if !w.identical {
            eprintln!("# ERROR: {} slice/bitset outcomes diverge", w.name);
            ok = false;
        }
    }

    let min_ratio = reports
        .iter()
        .map(|w| {
            ratio(
                w.slice.result.stats.qc_kernel_ops,
                w.bitset.result.stats.qc_kernel_ops,
            )
        })
        .fold(f64::INFINITY, f64::min);
    let body = format!(
        concat!(
            "{{\n",
            "  \"version\": 1,\n",
            "  \"harness\": \"exp_perf\",\n",
            "  \"counters\": {{\n",
            "    \"qc_nodes\": \"set-enumeration nodes visited (coverage + top-k)\",\n",
            "    \"edge_tests\": \"point adjacency/membership queries in the hot loops\",\n",
            "    \"kernel_ops\": \"modeled work: slice elements touched vs bitset u64 words touched\"\n",
            "  }},\n",
            "  \"workloads\": [\n{}\n  ],\n",
            "  \"summary\": {{\"min_kernel_ops_ratio\": {:.4}, \"all_outcomes_identical\": {}}}\n",
            "}}\n"
        ),
        reports
            .iter()
            .map(json_workload)
            .collect::<Vec<_>>()
            .join(",\n"),
        min_ratio,
        ok
    );
    if let Err(e) = std::fs::write(&out_path, &body) {
        eprintln!("# ERROR: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("# wrote {out_path} (min kernel_ops ratio {min_ratio:.2}x)");
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
