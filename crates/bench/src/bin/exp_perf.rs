//! E-PERF — tracked performance baseline: sorted-slice vs packed-bitset
//! hot path across a five-workload scenario matrix, under fixed seeds.
//!
//! ```text
//! cargo run --release -p scpm-bench --bin exp_perf \
//!     [dblp_scale] [lastfm_scale] [out.json] [--no-timing] \
//!     [--scenario-scale F] [--check BASELINE.json]
//! ```
//!
//! The matrix covers the shapes that stress different kernels (the
//! workload taxonomy follows the significance-testing benchmarks of Lee
//! et al., arXiv:1609.08266): the DBLP/Last.fm stand-ins plus a
//! dense-clique stress (wide candidate sets, full rows), a sparse-star
//! graph (hub-and-spoke, empty-block skipping dominates), and a
//! skewed-attribute distribution (head attributes induce wide subgraphs,
//! tail attributes tiny ones). For each workload the full SCPM run
//! executes twice — once with `Representation::Slice`, once with
//! `Representation::Bitset` — and the binary **exits nonzero unless the
//! two outcomes (reports + patterns) are byte-identical**. Wall-clock
//! plus the hardware-independent counters (qc-search nodes, point edge
//! tests, modeled kernel operations, fused-kernel calls, summary blocks
//! skipped) land in a v2 JSON file whose per-workload `thresholds` carry
//! the regression contract; the file is committed at the repo root as
//! `BENCH_scpm.json` (see `docs/PERFORMANCE.md`).
//!
//! `--check BASELINE.json` turns the binary into the CI perf-regression
//! gate: each workload recorded in the baseline is re-run at its recorded
//! scale and compared — **exactly** on outcomes (`qc_nodes`, `reports`,
//! `patterns`, slice/bitset identity) and within the baseline's
//! per-workload tolerance ratio on bitset `kernel_ops`; the fresh
//! slice/bitset ratio must also clear the baseline's floor. Any violation
//! exits nonzero.
//!
//! Determinism: every seed is a compile-time constant and the scales are
//! plain CLI flags — there is no `SystemTime`-derived input anywhere, so
//! with `--no-timing` (which zeroes the `wall_secs` fields) repeated runs
//! produce byte-identical JSON. CI diffs two back-to-back runs to enforce
//! exactly that.

use std::process::ExitCode;

use scpm_bench::baseline::{parse_baseline, WorkloadBaseline};
use scpm_bench::timed;
use scpm_core::{Scpm, ScpmParams, ScpmResult};
use scpm_datasets::{
    dblp_like, dense_clique_like, lastfm_like, skewed_attr_like, sparse_star_like, SyntheticDataset,
};
use scpm_quasiclique::Representation;

/// One row of the scenario matrix: a seeded generator plus the
/// paper-shaped mining parameters and the regression thresholds the
/// baseline carries for it.
struct Scenario {
    name: &'static str,
    /// Fixed workload seed (never derived from the clock).
    seed: u64,
    /// Generator scale when none is imposed by a `--check` baseline.
    default_scale: f64,
    generate: fn(f64, u64) -> SyntheticDataset,
    params: ScpmParams,
    /// Multiplicative slack on bitset `kernel_ops` for `--check`.
    kernel_ops_tolerance: f64,
    /// Floor on the slice/bitset kernel-ops ratio for `--check`.
    min_kernel_ops_ratio: f64,
}

/// The five-workload matrix. Order is the report order; names are the
/// join keys `--check` uses against the baseline file.
fn scenarios(dblp_scale: f64, lastfm_scale: f64, scenario_scale: f64) -> Vec<Scenario> {
    vec![
        Scenario {
            name: "dblp",
            seed: 42,
            default_scale: dblp_scale,
            generate: dblp_like,
            params: ScpmParams::new(8, 0.5, 8)
                .with_eps_min(0.1)
                .with_top_k(3)
                .with_max_attrs(3),
            kernel_ops_tolerance: 1.05,
            min_kernel_ops_ratio: 2.5,
        },
        Scenario {
            name: "lastfm",
            seed: 7,
            default_scale: lastfm_scale,
            generate: lastfm_like,
            params: ScpmParams::new(8, 0.5, 5)
                .with_eps_min(0.1)
                .with_top_k(4)
                .with_max_attrs(2),
            kernel_ops_tolerance: 1.05,
            min_kernel_ops_ratio: 2.5,
        },
        Scenario {
            name: "dense-clique",
            seed: 11,
            default_scale: 0.02 * scenario_scale,
            generate: dense_clique_like,
            params: ScpmParams::new(10, 0.6, 8)
                .with_eps_min(0.1)
                .with_top_k(3)
                .with_max_attrs(2),
            kernel_ops_tolerance: 1.05,
            min_kernel_ops_ratio: 2.0,
        },
        Scenario {
            name: "sparse-star",
            seed: 13,
            default_scale: 0.03 * scenario_scale,
            generate: sparse_star_like,
            params: ScpmParams::new(8, 0.5, 4)
                .with_eps_min(0.1)
                .with_top_k(3)
                .with_max_attrs(2),
            kernel_ops_tolerance: 1.05,
            min_kernel_ops_ratio: 1.2,
        },
        Scenario {
            name: "skewed-attr",
            seed: 17,
            default_scale: 0.02 * scenario_scale,
            generate: skewed_attr_like,
            params: ScpmParams::new(10, 0.5, 6)
                .with_eps_min(0.1)
                .with_top_k(3)
                .with_max_attrs(2),
            kernel_ops_tolerance: 1.05,
            min_kernel_ops_ratio: 1.5,
        },
    ]
}

struct PathResult {
    wall_secs: f64,
    result: ScpmResult,
}

struct WorkloadReport {
    name: &'static str,
    scale: f64,
    seed: u64,
    vertices: usize,
    edges: usize,
    attributes: usize,
    slice: PathResult,
    bitset: PathResult,
    identical: bool,
    kernel_ops_tolerance: f64,
    min_kernel_ops_ratio: f64,
}

/// Everything a run reports except wall-clock, as one comparable string.
fn fingerprint(r: &ScpmResult) -> String {
    format!("{:?}|{:?}", r.reports, r.patterns)
}

fn run_workload(scenario: &Scenario, scale: f64, timing: bool) -> WorkloadReport {
    let dataset = (scenario.generate)(scale, scenario.seed);
    let g = &dataset.graph;
    let run = |repr: Representation| {
        // One warm-up pass (page-in, allocator steady state), then the
        // timed pass — single-shot cold timings on a shared container are
        // too noisy to track.
        let p = scenario.params.clone().with_repr(repr);
        if timing {
            let _ = Scpm::new(g, p.clone()).run();
        }
        let (result, secs) = timed(|| Scpm::new(g, p).run());
        PathResult {
            wall_secs: if timing { secs } else { 0.0 },
            result,
        }
    };
    let slice = run(Representation::Slice);
    let bitset = run(Representation::Bitset);
    let identical = fingerprint(&slice.result) == fingerprint(&bitset.result);
    WorkloadReport {
        name: scenario.name,
        scale,
        seed: scenario.seed,
        vertices: g.num_vertices(),
        edges: g.num_edges(),
        attributes: g.num_attributes(),
        slice,
        bitset,
        identical,
        kernel_ops_tolerance: scenario.kernel_ops_tolerance,
        min_kernel_ops_ratio: scenario.min_kernel_ops_ratio,
    }
}

fn json_path(p: &PathResult) -> String {
    let s = &p.result.stats;
    format!(
        concat!(
            "{{\"wall_secs\": {:.6}, \"qc_nodes\": {}, \"edge_tests\": {}, ",
            "\"kernel_ops\": {}, \"fused_ops\": {}, \"blocks_skipped\": {}, ",
            "\"reports\": {}, \"patterns\": {}}}"
        ),
        p.wall_secs,
        s.qc_nodes_coverage + s.qc_nodes_topk,
        s.qc_edge_tests,
        s.qc_kernel_ops,
        s.qc_fused_ops,
        s.qc_blocks_skipped,
        p.result.reports.len(),
        p.result.patterns.len()
    )
}

fn ratio(slice: u64, bitset: u64) -> f64 {
    slice as f64 / bitset.max(1) as f64
}

fn report_ratio(w: &WorkloadReport) -> f64 {
    ratio(
        w.slice.result.stats.qc_kernel_ops,
        w.bitset.result.stats.qc_kernel_ops,
    )
}

fn json_workload(w: &WorkloadReport) -> String {
    format!(
        concat!(
            "    {{\n",
            "      \"name\": \"{}\",\n",
            "      \"scale\": {},\n",
            "      \"seed\": {},\n",
            "      \"vertices\": {},\n",
            "      \"edges\": {},\n",
            "      \"attributes\": {},\n",
            "      \"slice\": {},\n",
            "      \"bitset\": {},\n",
            "      \"kernel_ops_ratio\": {:.4},\n",
            "      \"thresholds\": {{\"kernel_ops_tolerance\": {}, \"min_kernel_ops_ratio\": {}}},\n",
            "      \"outcomes_identical\": {}\n",
            "    }}"
        ),
        w.name,
        w.scale,
        w.seed,
        w.vertices,
        w.edges,
        w.attributes,
        json_path(&w.slice),
        json_path(&w.bitset),
        report_ratio(w),
        w.kernel_ops_tolerance,
        w.min_kernel_ops_ratio,
        w.identical
    )
}

fn render(reports: &[WorkloadReport], min_ratio: f64, ok: bool) -> String {
    format!(
        concat!(
            "{{\n",
            "  \"version\": 2,\n",
            "  \"harness\": \"exp_perf\",\n",
            "  \"counters\": {{\n",
            "    \"qc_nodes\": \"set-enumeration nodes visited (coverage + top-k)\",\n",
            "    \"edge_tests\": \"point adjacency/membership queries in the hot loops\",\n",
            "    \"kernel_ops\": \"modeled work: slice elements touched vs bitset u64 words touched\",\n",
            "    \"fused_ops\": \"fused single-pass kernel invocations (bitset path only)\",\n",
            "    \"blocks_skipped\": \"8-word blocks skipped via the VertexBitset summary hierarchy\"\n",
            "  }},\n",
            "  \"workloads\": [\n{}\n  ],\n",
            "  \"summary\": {{\"min_kernel_ops_ratio\": {:.4}, \"all_outcomes_identical\": {}}}\n",
            "}}\n"
        ),
        reports
            .iter()
            .map(json_workload)
            .collect::<Vec<_>>()
            .join(",\n"),
        min_ratio,
        ok
    )
}

/// Compares one fresh workload run against its committed baseline entry.
/// Returns the violation messages (empty = pass).
fn check_workload(w: &WorkloadReport, base: &WorkloadBaseline) -> Vec<String> {
    let mut errs = Vec::new();
    let fresh = &w.bitset.result;
    let s = &fresh.stats;
    let qc_nodes = s.qc_nodes_coverage + s.qc_nodes_topk;
    if !w.identical {
        errs.push(format!("{}: slice/bitset outcomes diverge", w.name));
    }
    if w.seed != base.seed {
        errs.push(format!(
            "{}: compiled-in seed {} != baseline seed {}",
            w.name, w.seed, base.seed
        ));
    }
    for (what, got, want) in [
        ("qc_nodes", qc_nodes, base.qc_nodes),
        ("reports", fresh.reports.len() as u64, base.reports),
        ("patterns", fresh.patterns.len() as u64, base.patterns),
    ] {
        if got != want {
            errs.push(format!(
                "{}: {what} changed: fresh {got} != baseline {want} (outcome drift)",
                w.name
            ));
        }
    }
    let limit = (base.kernel_ops as f64 * base.kernel_ops_tolerance).ceil() as u64;
    if s.qc_kernel_ops > limit {
        errs.push(format!(
            "{}: kernel_ops regressed: fresh {} > baseline {} x tolerance {} = {}",
            w.name, s.qc_kernel_ops, base.kernel_ops, base.kernel_ops_tolerance, limit
        ));
    }
    let r = report_ratio(w);
    if r < base.min_kernel_ops_ratio {
        errs.push(format!(
            "{}: slice/bitset kernel_ops ratio {:.3} below floor {:.3}",
            w.name, r, base.min_kernel_ops_ratio
        ));
    }
    errs
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let timing = !args.iter().any(|a| a == "--no-timing");
    // Split flags (and their values) from positionals so a flag can
    // appear at any position without eating a positional slot. Strict on
    // purpose: a flag missing its value or a mistyped flag must fail
    // loudly, never degrade into a baseline-overwriting normal run.
    let mut check_path: Option<String> = None;
    let mut scenario_scale = 1.0f64;
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--no-timing" => {}
            "--check" => match it.next() {
                Some(p) => check_path = Some(p.clone()),
                None => {
                    eprintln!("# ERROR: --check requires a baseline path");
                    return ExitCode::FAILURE;
                }
            },
            "--scenario-scale" => match it.next().and_then(|s| s.parse().ok()) {
                Some(f) => scenario_scale = f,
                None => {
                    eprintln!("# ERROR: --scenario-scale requires a numeric value");
                    return ExitCode::FAILURE;
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("# ERROR: unknown flag {flag}");
                return ExitCode::FAILURE;
            }
            _ => positional.push(a.clone()),
        }
    }
    if positional.len() > 3 {
        eprintln!(
            "# ERROR: expected at most 3 positionals (dblp_scale lastfm_scale out.json), got {positional:?}"
        );
        return ExitCode::FAILURE;
    }
    let pos_f64 = |i: usize, default: f64| -> Result<f64, String> {
        match positional.get(i) {
            None => Ok(default),
            Some(s) => s
                .parse()
                .map_err(|_| format!("# ERROR: positional {} is not a number: {s}", i + 1)),
        }
    };
    let (dblp_scale, lastfm_scale) = match (pos_f64(0, 0.02), pos_f64(1, 0.01)) {
        (Ok(d), Ok(l)) => (d, l),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    // In check mode the fresh JSON defaults to a scratch name — never
    // silently overwrite the committed baseline being checked against.
    let out_path = positional.get(2).cloned().unwrap_or_else(|| {
        if check_path.is_some() {
            "BENCH_check.json".to_string()
        } else {
            "BENCH_scpm.json".to_string()
        }
    });

    let matrix = scenarios(dblp_scale, lastfm_scale, scenario_scale);
    let baseline = match &check_path {
        Some(path) => match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
            Ok(text) => match parse_baseline(&text) {
                Ok(ws) => Some(ws),
                Err(e) => {
                    eprintln!("# ERROR: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("# ERROR: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    // In check mode, run exactly the baseline's workloads at the
    // baseline's scales; otherwise the full matrix at CLI scales.
    let mut reports: Vec<WorkloadReport> = Vec::new();
    let mut check_errs: Vec<String> = Vec::new();
    match &baseline {
        Some(entries) => {
            for base in entries {
                let Some(scenario) = matrix.iter().find(|s| s.name == base.name) else {
                    check_errs.push(format!("unknown baseline workload \"{}\"", base.name));
                    continue;
                };
                let w = run_workload(scenario, base.scale, timing);
                check_errs.extend(check_workload(&w, base));
                reports.push(w);
            }
        }
        None => {
            for scenario in &matrix {
                reports.push(run_workload(scenario, scenario.default_scale, timing));
            }
        }
    }

    let mut ok = true;
    for w in &reports {
        let b = &w.bitset.result.stats;
        eprintln!(
            "# {}: V={} E={} | slice kernel_ops={} bitset kernel_ops={} ratio={:.2}x | fused_ops={} blocks_skipped={} | identical={}",
            w.name,
            w.vertices,
            w.edges,
            w.slice.result.stats.qc_kernel_ops,
            b.qc_kernel_ops,
            report_ratio(w),
            b.qc_fused_ops,
            b.qc_blocks_skipped,
            w.identical
        );
        if !w.identical {
            eprintln!("# ERROR: {} slice/bitset outcomes diverge", w.name);
            ok = false;
        }
    }

    let min_ratio = reports
        .iter()
        .map(report_ratio)
        .fold(f64::INFINITY, f64::min);
    let body = render(&reports, min_ratio, ok);
    if let Err(e) = std::fs::write(&out_path, &body) {
        eprintln!("# ERROR: cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    eprintln!("# wrote {out_path} (min kernel_ops ratio {min_ratio:.2}x)");

    if baseline.is_some() {
        if check_errs.is_empty() {
            eprintln!(
                "# check PASSED against {} ({} workloads)",
                check_path.as_deref().unwrap_or(""),
                reports.len()
            );
        } else {
            for e in &check_errs {
                eprintln!("# CHECK FAILED: {e}");
            }
            return ExitCode::FAILURE;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
