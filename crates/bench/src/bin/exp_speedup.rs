//! E-SPD — parallel speedup of the SCPM drivers on the skewed synthetic
//! DBLP workload (the paper's parallel-scalability story).
//!
//! ```text
//! cargo run --release -p scpm-bench --bin exp_speedup [scale] [seed] [max_threads]
//! ```
//!
//! Two complementary views are reported:
//!
//! 1. **Measured wall-clock** of the branch-level baseline
//!    (`run_parallel_branch_level`) and the work-stealing scheduler
//!    (`run_parallel_with`) at 1, 2, 4, … `max_threads` threads. Only
//!    meaningful on a multi-core machine — a 1-core container reports flat
//!    times for every configuration.
//! 2. **Modeled makespan** from the scheduler's exact work decomposition
//!    ([`run_parallel_traced`]): each task's quasi-clique-search node count
//!    is a hardware-independent cost proxy, and greedy longest-task-first
//!    assignment of those costs onto `p` workers bounds what `p` real cores
//!    could achieve (the familiar `max(T₁/p, t_max)` list-scheduling
//!    picture; spawn ordering is ignored, so the model slightly flatters
//!    deep splits). Branch-level scheduling is modeled from the
//!    `split_depth = 0` trace — its largest unit is an entire hub-attribute
//!    branch, which is exactly the serialization the subtree scheduler
//!    removes.
//!
//! Output is TSV: `view  driver  threads  value  speedup`.

use scpm_bench::{arg_f64, arg_usize, row, timed};
use scpm_core::{
    run_parallel_branch_level, run_parallel_traced, run_parallel_with, ParallelConfig, Scpm,
    ScpmParams, SubtreeTrace,
};
use scpm_datasets::dblp_like;

fn params() -> ScpmParams {
    ScpmParams::new(8, 0.5, 8)
        .with_eps_min(0.1)
        .with_top_k(3)
        .with_max_attrs(3)
}

/// Greedy longest-first assignment of task costs onto `p` workers; returns
/// the resulting makespan in cost units.
fn lpt_makespan(weights: &[u64], p: usize) -> u64 {
    let mut sorted: Vec<u64> = weights.to_vec();
    sorted.sort_unstable_by(|a, b| b.cmp(a));
    let mut loads = vec![0u64; p.max(1)];
    for w in sorted {
        let min = loads.iter_mut().min().expect("at least one worker");
        *min += w;
    }
    loads.into_iter().max().unwrap_or(0)
}

/// Modeled speedup over the serial total for one work decomposition.
fn modeled(view: &str, traces: &[SubtreeTrace], threads: &[usize]) {
    let weights: Vec<u64> = traces.iter().map(SubtreeTrace::work).collect();
    let total: u64 = weights.iter().sum();
    let largest = weights.iter().copied().max().unwrap_or(0);
    eprintln!(
        "# {view}: {} tasks, total work {total}, largest task {largest} ({:.1}%)",
        weights.len(),
        100.0 * largest as f64 / total.max(1) as f64
    );
    for &p in threads {
        let makespan = lpt_makespan(&weights, p).max(1);
        row!(
            "modeled",
            view,
            p,
            makespan,
            format!("{:.2}", total as f64 / makespan as f64)
        );
    }
}

fn main() {
    let scale = arg_f64(1, 0.02);
    let seed = arg_usize(2, 21) as u64;
    let max_threads = arg_usize(3, 8).max(1);
    let mut threads = Vec::new();
    let mut p = 1;
    while p <= max_threads {
        threads.push(p);
        p *= 2;
    }

    let dataset = dblp_like(scale, seed);
    let g = &dataset.graph;
    println!(
        "# dblp-like scale={scale} seed={seed} vertices={} edges={} attrs={}",
        g.num_vertices(),
        g.num_edges(),
        g.num_attributes()
    );
    println!("# columns: view\tdriver\tthreads\tvalue\tspeedup");

    // Measured wall-clock (flat on a 1-core container; see module docs).
    let (_, serial_secs) = timed(|| Scpm::new(g, params()).run());
    row!(
        "measured",
        "serial",
        1,
        format!("{serial_secs:.3}s"),
        "1.00"
    );
    for &t in &threads {
        let (_, secs) = timed(|| run_parallel_branch_level(g, params(), t));
        row!(
            "measured",
            "branch_level",
            t,
            format!("{secs:.3}s"),
            format!("{:.2}", serial_secs / secs)
        );
    }
    for &t in &threads {
        let config = ParallelConfig::new(t);
        let (_, secs) = timed(|| run_parallel_with(g, params(), &config));
        row!(
            "measured",
            "work_stealing",
            t,
            format!("{secs:.3}s"),
            format!("{:.2}", serial_secs / secs)
        );
    }

    // Modeled makespans from the exact work decompositions. split_depth=0
    // is precisely the branch-level unit structure; split_depth=2 is the
    // default work-stealing granularity.
    let (_, branch_trace) =
        run_parallel_traced(g, params(), &ParallelConfig::new(2).with_split_depth(0));
    modeled("branch_level", &branch_trace, &threads);
    let (_, subtree_trace) = run_parallel_traced(g, params(), &ParallelConfig::new(2));
    modeled("work_stealing", &subtree_trace, &threads);
}
