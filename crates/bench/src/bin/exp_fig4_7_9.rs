//! E-F4 / E-F7 / E-F9 — Figures 4, 7, 9: expected structural correlation
//! as a function of support, simulation model (`sim-exp`, with standard
//! deviation) vs. analytical upper bound (`max-exp`).
//!
//! ```text
//! cargo run --release -p scpm-bench --bin exp_fig4_7_9 [dataset] [scale] [runs] [threads]
//! # dataset ∈ {dblp, lastfm, citeseer}, default dblp
//! ```
//!
//! Expected shape (as in the paper): both curves grow with σ, `max-exp`
//! is consistently above `sim-exp` (the bound is not tight — it only
//! requires the degree condition) but with a similar growth profile.
//! The paper runs up to `r = 1000` simulations per point; the draws are
//! distributed over `threads` workers (deterministic per seed regardless
//! of the thread count).

use scpm_bench::{arg_f64, arg_str, arg_usize, row};
use scpm_core::nullmodel::{simulate_expected_parallel, AnalyticalModel};
use scpm_datasets::{citeseer_like, generate, lastfm_like, DatasetSpec, SyntheticDataset};
use scpm_quasiclique::QcConfig;

fn main() {
    let which = arg_str(1, "dblp");
    let (dataset, cfg, paper_sigmas): (SyntheticDataset, QcConfig, Vec<f64>) = match which.as_str()
    {
        // Paper figure ranges: DBLP σ ∈ (0, 10^4], LastFm σ ∈ [2·10^4, 10^5],
        // CiteSeer σ ∈ (0, 3·10^4] — expressed as fractions of n below.
        // DBLP uses the co-authorship clique overlay: without the real
        // graph's per-paper clique spectrum, random samples at min_size=10
        // contain no quasi-cliques and sim-exp degenerates to zero (see
        // DatasetSpec::dblp_coauth).
        "dblp" => (
            generate(&DatasetSpec::dblp_coauth(), arg_f64(2, 0.05), 42),
            QcConfig::new(0.5, 10),
            vec![0.01, 0.02, 0.03, 0.05, 0.07, 0.09],
        ),
        "lastfm" => (
            lastfm_like(arg_f64(2, 0.02), 1337),
            QcConfig::new(0.5, 5),
            vec![0.07, 0.1, 0.15, 0.2, 0.3, 0.37],
        ),
        "citeseer" => (
            citeseer_like(arg_f64(2, 0.02), 2718),
            QcConfig::new(0.5, 5),
            vec![0.01, 0.02, 0.04, 0.06, 0.08, 0.1],
        ),
        other => {
            eprintln!("unknown dataset `{other}` (want dblp | lastfm | citeseer)");
            std::process::exit(2);
        }
    };
    let runs = arg_usize(3, 50);
    let threads = arg_usize(4, 4);
    let g = dataset.graph.graph();
    let n = g.num_vertices();
    println!(
        "# {which} scale={} vertices={n} edges={} (sim runs per point: {runs}, threads: {threads})",
        dataset.scale,
        g.num_edges()
    );
    println!("# columns: sigma\tsim_exp\tsim_sd\tmax_exp");
    let model = AnalyticalModel::new(g, &cfg);
    for frac in paper_sigmas {
        let sigma = ((n as f64) * frac).round() as usize;
        if sigma < cfg.min_size {
            continue;
        }
        let sim = simulate_expected_parallel(g, &cfg, sigma, runs, 7, threads);
        let bound = model.expected(sigma);
        row!(
            sigma,
            format!("{:.6e}", sim.mean),
            format!("{:.6e}", sim.std_dev),
            format!("{:.6e}", bound)
        );
    }
}
