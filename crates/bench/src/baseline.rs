//! Reader for the `BENCH_scpm.json` v2 baseline that `exp_perf` writes
//! and its `--check` mode consumes.
//!
//! The file is machine-written by this same crate with a fixed shape, so
//! a full JSON parser is unnecessary (and the container has no serde);
//! this module does shape-aware scanning: it slices the `"workloads"`
//! array into brace-balanced objects and pulls numeric fields out of each
//! by key. Unknown keys are ignored, so the schema can grow without
//! breaking older checkers.

/// The per-workload numbers `--check` compares a fresh run against.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkloadBaseline {
    /// Scenario name (must match a scenario `exp_perf` knows how to run).
    pub name: String,
    /// Generator scale the baseline was recorded at.
    pub scale: f64,
    /// Generator seed (cross-checked against the compiled-in seed).
    pub seed: u64,
    /// Set-enumeration nodes visited (bitset path; identical across
    /// representations by construction). Compared exactly.
    pub qc_nodes: u64,
    /// Modeled kernel work of the bitset path. Compared under
    /// `kernel_ops_tolerance`.
    pub kernel_ops: u64,
    /// Residual point probes of the bitset path. `kernel_ops +
    /// edge_tests` is compared under the same tolerance — the
    /// probe-bottleneck contract of the batched promotion kernels.
    pub edge_tests: u64,
    /// Attribute-set reports emitted. Compared exactly.
    pub reports: u64,
    /// Patterns emitted. Compared exactly.
    pub patterns: u64,
    /// Multiplicative slack for the kernel-ops regression check: a fresh
    /// run fails when `fresh > kernel_ops * kernel_ops_tolerance`.
    pub kernel_ops_tolerance: f64,
    /// Floor for the fresh run's slice/bitset kernel-ops ratio.
    pub min_kernel_ops_ratio: f64,
}

/// Extracts the numeric value following `"key":` in `obj`, if any.
/// Numbers end at `,`, `}`, `]`, or whitespace.
fn field_num(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = obj.find(&pat)? + pat.len();
    let rest = obj[start..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Extracts the string value following `"key":` in `obj`, if any.
fn field_str(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":");
    let start = obj.find(&pat)? + pat.len();
    let rest = obj[start..].trim_start().strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// The brace-balanced `{...}` chunk starting at the first `{` at or after
/// `from`, together with the index one past its closing brace.
fn object_at(text: &str, from: usize) -> Option<(usize, usize)> {
    let open = from + text[from..].find('{')?;
    let mut depth = 0usize;
    for (i, b) in text[open..].bytes().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some((open, open + i + 1));
                }
            }
            _ => {}
        }
    }
    None
}

/// Parses a v2 baseline file into its workload entries.
///
/// Fails with a message on a missing/old `version`, a malformed
/// `workloads` array, or a workload missing one of the compared fields.
pub fn parse_baseline(text: &str) -> Result<Vec<WorkloadBaseline>, String> {
    let version = field_num(text, "version").ok_or("baseline: missing \"version\"")? as u32;
    if version != 2 {
        return Err(format!(
            "baseline: version {version} unsupported (need 2; regenerate with exp_perf)"
        ));
    }
    let arr_start = text
        .find("\"workloads\":")
        .ok_or("baseline: missing \"workloads\"")?;
    let arr_open = arr_start
        + text[arr_start..]
            .find('[')
            .ok_or("baseline: malformed \"workloads\"")?;
    // The matching close bracket (workload objects contain no brackets).
    let arr_end = arr_open
        + text[arr_open..]
            .find(']')
            .ok_or("baseline: unterminated \"workloads\"")?;
    let mut out = Vec::new();
    let mut cursor = arr_open;
    while let Some((open, close)) = object_at(text, cursor) {
        if open >= arr_end {
            break;
        }
        let obj = &text[open..close];
        cursor = close;
        let name = field_str(obj, "name").ok_or("workload: missing \"name\"")?;
        let bitset_start = obj
            .find("\"bitset\":")
            .ok_or_else(|| format!("workload {name}: missing \"bitset\""))?;
        let (bs, be) = object_at(obj, bitset_start)
            .ok_or_else(|| format!("workload {name}: malformed \"bitset\""))?;
        let bitset = &obj[bs..be];
        let need = |o: &str, key: &str| {
            field_num(o, key).ok_or_else(|| format!("workload {name}: missing \"{key}\""))
        };
        out.push(WorkloadBaseline {
            scale: need(obj, "scale")?,
            seed: need(obj, "seed")? as u64,
            qc_nodes: need(bitset, "qc_nodes")? as u64,
            kernel_ops: need(bitset, "kernel_ops")? as u64,
            edge_tests: need(bitset, "edge_tests")? as u64,
            reports: need(bitset, "reports")? as u64,
            patterns: need(bitset, "patterns")? as u64,
            kernel_ops_tolerance: need(obj, "kernel_ops_tolerance")?,
            min_kernel_ops_ratio: need(obj, "min_kernel_ops_ratio")?,
            name,
        });
    }
    if out.is_empty() {
        return Err("baseline: no workloads found".into());
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"{
  "version": 2,
  "harness": "exp_perf",
  "workloads": [
    {
      "name": "dblp",
      "scale": 0.02,
      "seed": 42,
      "slice": {"wall_secs": 0.1, "qc_nodes": 9, "edge_tests": 70, "kernel_ops": 100, "reports": 3, "patterns": 2},
      "bitset": {"wall_secs": 0.1, "qc_nodes": 9, "edge_tests": 12, "kernel_ops": 40, "reports": 3, "patterns": 2},
      "thresholds": {"kernel_ops_tolerance": 1.05, "min_kernel_ops_ratio": 2.0},
      "outcomes_identical": true
    },
    {
      "name": "lastfm",
      "scale": 0.01,
      "seed": 7,
      "bitset": {"qc_nodes": 5, "edge_tests": 4, "kernel_ops": 20, "reports": 1, "patterns": 0},
      "thresholds": {"kernel_ops_tolerance": 1.1, "min_kernel_ops_ratio": 1.5}
    }
  ],
  "summary": {"min_kernel_ops_ratio": 2.5}
}"#;

    #[test]
    fn parses_both_workloads() {
        let ws = parse_baseline(SAMPLE).unwrap();
        assert_eq!(ws.len(), 2);
        assert_eq!(ws[0].name, "dblp");
        assert_eq!(ws[0].seed, 42);
        // The bitset sub-object wins, not the slice one.
        assert_eq!(ws[0].kernel_ops, 40);
        assert_eq!(ws[0].edge_tests, 12);
        assert_eq!(ws[1].edge_tests, 4);
        assert_eq!(ws[0].qc_nodes, 9);
        assert_eq!(ws[0].reports, 3);
        assert_eq!(ws[0].patterns, 2);
        assert!((ws[0].kernel_ops_tolerance - 1.05).abs() < 1e-12);
        assert!((ws[1].min_kernel_ops_ratio - 1.5).abs() < 1e-12);
        assert!((ws[1].scale - 0.01).abs() < 1e-12);
    }

    #[test]
    fn rejects_wrong_version() {
        let v1 = SAMPLE.replace("\"version\": 2", "\"version\": 1");
        assert!(parse_baseline(&v1).unwrap_err().contains("version 1"));
    }

    #[test]
    fn rejects_missing_fields() {
        let broken = SAMPLE.replace("\"kernel_ops\": 40, ", "");
        assert!(parse_baseline(&broken).unwrap_err().contains("kernel_ops"));
        assert!(parse_baseline("{\"version\": 2}").is_err());
    }
}
