//! Micro-benchmarks of the frequent itemset substrate: Eclat vs Apriori
//! vs dEclat, plus tidset intersections, on a DBLP-like attribute
//! distribution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scpm_datasets::dblp_like;
use scpm_itemset::{apriori, declat, eclat, EclatConfig, Tidset};

fn bench_eclat(c: &mut Criterion) {
    let dataset = dblp_like(0.02, 3);
    let g = &dataset.graph;
    let mut group = c.benchmark_group("eclat");
    group.sample_size(10);
    for min_support in [50usize, 100, 200] {
        group.bench_with_input(
            BenchmarkId::new("dblp_like_0.02", min_support),
            &min_support,
            |b, &ms| {
                let cfg = EclatConfig {
                    min_support: ms,
                    max_size: 3,
                };
                b.iter(|| eclat(g, &cfg).len())
            },
        );
    }
    group.finish();
}

fn bench_tidset_intersection(c: &mut Criterion) {
    let a = Tidset::from_sorted((0..100_000).step_by(2).collect());
    let b = Tidset::from_sorted((0..100_000).step_by(3).collect());
    c.bench_function("tidset_intersect_100k", |bch| {
        bch.iter(|| a.intersect(&b).support())
    });
    c.bench_function("tidset_intersect_count_100k", |bch| {
        bch.iter(|| a.intersect_count(&b))
    });
}

/// The three miners on the same database: vertical tidsets (Eclat),
/// horizontal counting (Apriori), vertical diffsets (dEclat).
fn bench_miner_comparison(c: &mut Criterion) {
    let dataset = dblp_like(0.02, 3);
    let g = &dataset.graph;
    let cfg = EclatConfig {
        min_support: 50,
        max_size: 3,
    };
    let mut group = c.benchmark_group("itemset_miners");
    group.sample_size(10);
    group.bench_function("eclat", |b| b.iter(|| eclat(g, &cfg).len()));
    group.bench_function("apriori", |b| b.iter(|| apriori(g, &cfg).len()));
    group.bench_function("declat", |b| b.iter(|| declat(g, &cfg).len()));
    group.finish();
}

criterion_group!(
    benches,
    bench_eclat,
    bench_miner_comparison,
    bench_tidset_intersection
);
criterion_main!(benches);
