//! End-to-end benchmarks: SCPM-DFS vs SCPM-BFS vs Naive (the Figure 8
//! comparison at micro scale), and the parallel driver.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scpm_core::{run_naive, run_parallel, Scpm, ScpmParams};
use scpm_datasets::small_dblp_like;
use scpm_quasiclique::SearchOrder;

fn params(sigma_min: usize) -> ScpmParams {
    ScpmParams::new(sigma_min, 0.5, 11)
        .with_eps_min(0.1)
        .with_delta_min(1.0)
        .with_top_k(5)
        .with_max_attrs(3)
}

fn bench_algorithms(c: &mut Criterion) {
    let dataset = small_dblp_like(0.02, 77);
    let g = &dataset.graph;
    let sigma_min = 5;
    let mut group = c.benchmark_group("scpm_vs_naive");
    group.sample_size(10);
    group.bench_function("scpm_dfs", |b| {
        b.iter(|| Scpm::new(g, params(sigma_min).with_order(SearchOrder::Dfs)).run())
    });
    group.bench_function("scpm_bfs", |b| {
        b.iter(|| Scpm::new(g, params(sigma_min).with_order(SearchOrder::Bfs)).run())
    });
    group.bench_function("naive", |b| b.iter(|| run_naive(g, &params(sigma_min))));
    group.finish();
}

fn bench_parallel(c: &mut Criterion) {
    let dataset = small_dblp_like(0.04, 77);
    let g = &dataset.graph;
    let mut group = c.benchmark_group("scpm_parallel");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| run_parallel(g, params(8), t))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms, bench_parallel);
criterion_main!(benches);
