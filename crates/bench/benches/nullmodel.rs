//! Micro-benchmarks of the null models: the O(max_degree) analytical
//! recurrence vs. the naive double sum (the design choice called out in
//! DESIGN.md), the exact hypergeometric variant, and the simulation
//! estimator (serial vs crossbeam-parallel).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scpm_core::nullmodel::{simulate_expected, simulate_expected_parallel, AnalyticalModel};
use scpm_core::ExactModel;
use scpm_datasets::dblp_like;
use scpm_quasiclique::QcConfig;

fn bench_analytical(c: &mut Criterion) {
    let dataset = dblp_like(0.05, 5);
    let g = dataset.graph.graph();
    let cfg = QcConfig::new(0.5, 10);
    let model = AnalyticalModel::new(g, &cfg);
    let exact = ExactModel::new(g, &cfg);
    let sigma = g.num_vertices() / 20;
    let mut group = c.benchmark_group("expected_epsilon");
    group.bench_with_input(BenchmarkId::new("recurrence", sigma), &sigma, |b, &s| {
        b.iter(|| model.expected_uncached(s))
    });
    group.bench_with_input(
        BenchmarkId::new("naive_double_sum", sigma),
        &sigma,
        |b, &s| b.iter(|| model.expected_naive(s)),
    );
    group.bench_with_input(
        BenchmarkId::new("hypergeometric_exact", sigma),
        &sigma,
        |b, &s| b.iter(|| exact.expected_uncached(s)),
    );
    group.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let dataset = dblp_like(0.02, 5);
    let g = dataset.graph.graph();
    let cfg = QcConfig::new(0.5, 10);
    let sigma = g.num_vertices() / 20;
    let mut group = c.benchmark_group("sim_exp");
    group.sample_size(10);
    group.bench_function("r10_serial", |b| {
        b.iter(|| simulate_expected(g, &cfg, sigma, 10, 7).mean)
    });
    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("r10_parallel", threads),
            &threads,
            |b, &t| b.iter(|| simulate_expected_parallel(g, &cfg, sigma, 10, 7, t).mean),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_analytical, bench_simulation);
criterion_main!(benches);
