//! Parallel-driver benchmarks: work-stealing scheduler vs the branch-level
//! baseline on the skewed synthetic DBLP workload (the paper's Figure 10
//! speedup story), across thread counts and split depths.
//!
//! The workload is deliberately *skewed*: the Zipf attribute model gives
//! the synthetic DBLP graph a few hub terms whose level-1 branches dwarf
//! the rest, which is exactly where branch-level scheduling flatlines and
//! subtree stealing keeps scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scpm_core::{run_parallel_branch_level, run_parallel_with, ParallelConfig, ScpmParams};
use scpm_datasets::dblp_like;

fn params() -> ScpmParams {
    ScpmParams::new(8, 0.5, 8)
        .with_eps_min(0.1)
        .with_top_k(3)
        .with_max_attrs(3)
}

fn bench_work_stealing(c: &mut Criterion) {
    let dataset = dblp_like(0.02, 21);
    let g = &dataset.graph;
    let mut group = c.benchmark_group("parallel_work_stealing");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        for split_depth in [0usize, 2] {
            let id = BenchmarkId::new(format!("split{split_depth}"), threads);
            group.bench_with_input(id, &threads, |b, &t| {
                let config = ParallelConfig::new(t).with_split_depth(split_depth);
                b.iter(|| run_parallel_with(g, params(), &config))
            });
        }
    }
    group.finish();
}

fn bench_branch_level_baseline(c: &mut Criterion) {
    let dataset = dblp_like(0.02, 21);
    let g = &dataset.graph;
    let mut group = c.benchmark_group("parallel_branch_level");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| run_parallel_branch_level(g, params(), t))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_work_stealing, bench_branch_level_baseline);
criterion_main!(benches);
