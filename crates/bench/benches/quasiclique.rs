//! Micro-benchmarks of the quasi-clique engine: the three mining modes and
//! both search orders on a planted-community graph (the workload shape of
//! every SCPM coverage call).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scpm_graph::generators::planted::{BackgroundModel, PlantedCommunityConfig, PlantedGraph};
use scpm_quasiclique::{Miner, QcConfig, SearchOrder};

fn planted(n: usize) -> PlantedGraph {
    PlantedGraph::generate(
        &PlantedCommunityConfig {
            n,
            background: BackgroundModel::Uniform { mean_degree: 3.0 },
            num_communities: n / 100,
            community_size: (8, 14),
            p_in: 0.8,
        },
        7,
    )
}

fn bench_modes(c: &mut Criterion) {
    let pg = planted(2000);
    let cfg = QcConfig::new(0.5, 6);
    let mut group = c.benchmark_group("quasiclique_modes");
    group.sample_size(10);
    group.bench_function("coverage", |b| {
        b.iter(|| Miner::new(&pg.graph, cfg).coverage().covered.len())
    });
    group.bench_function("enumerate_maximal", |b| {
        b.iter(|| Miner::new(&pg.graph, cfg).enumerate_maximal().cliques.len())
    });
    group.bench_function("top_5", |b| {
        b.iter(|| Miner::new(&pg.graph, cfg).top_k(5).cliques.len())
    });
    group.finish();
}

fn bench_orders(c: &mut Criterion) {
    let pg = planted(2000);
    let cfg = QcConfig::new(0.5, 6);
    let mut group = c.benchmark_group("quasiclique_orders");
    group.sample_size(10);
    for (name, order) in [("dfs", SearchOrder::Dfs), ("bfs", SearchOrder::Bfs)] {
        group.bench_with_input(BenchmarkId::new("coverage", name), &order, |b, &o| {
            b.iter(|| {
                Miner::new(&pg.graph, cfg)
                    .with_order(o)
                    .coverage()
                    .covered
                    .len()
            })
        });
    }
    group.finish();
}

fn bench_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("quasiclique_scaling");
    group.sample_size(10);
    for n in [1000, 2000, 4000] {
        let pg = planted(n);
        let cfg = QcConfig::new(0.5, 6);
        group.bench_with_input(BenchmarkId::new("coverage", n), &pg, |b, pg| {
            b.iter(|| Miner::new(&pg.graph, cfg).coverage().covered.len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_modes, bench_orders, bench_scaling);
criterion_main!(benches);
