//! Ablation benchmarks for the design choices called out in DESIGN.md.
//! Disabling any pruning rule is semantically inert (verified by tests);
//! these benches quantify what each rule buys.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scpm_core::{Scorp, Scpm, ScpmParams, ScpmPruneFlags};
use scpm_datasets::small_dblp_like;
use scpm_graph::bitadj::{
    and_not_count, difference_is_empty, gather_intersect_popcount, intersect_popcount,
    BitAdjacency, VertexBitset,
};
use scpm_graph::csr::intersect_count;
use scpm_graph::generators::planted::{BackgroundModel, PlantedCommunityConfig, PlantedGraph};
use scpm_graph::induced::InducedSubgraph;
use scpm_quasiclique::{Miner, PruneFlags, QcConfig, Representation};

fn engine_flag_variants() -> Vec<(&'static str, PruneFlags)> {
    let all = PruneFlags::default();
    vec![
        ("all_on", all),
        (
            "no_lookahead",
            PruneFlags {
                lookahead: false,
                ..all
            },
        ),
        (
            "no_feasibility",
            PruneFlags {
                feasibility: false,
                ..all
            },
        ),
        (
            "no_size_bounds",
            PruneFlags {
                bounds: false,
                critical: false,
                ..all
            },
        ),
        (
            "no_critical_vertex",
            PruneFlags {
                critical: false,
                ..all
            },
        ),
        (
            "no_cover_vertex",
            PruneFlags {
                cover_vertex: false,
                ..all
            },
        ),
        (
            "no_diameter2",
            PruneFlags {
                diameter2: false,
                ..all
            },
        ),
        (
            "no_covered_prune",
            PruneFlags {
                covered_candidate: false,
                ..all
            },
        ),
    ]
}

fn bench_engine_prunings(c: &mut Criterion) {
    // Kept small: the no_diameter2 variant is quadratic in the vertex
    // count (root children carry the whole candidate list) and would
    // otherwise dominate the entire bench suite.
    let pg = PlantedGraph::generate(
        &PlantedCommunityConfig {
            n: 600,
            background: BackgroundModel::Uniform { mean_degree: 3.0 },
            num_communities: 6,
            community_size: (8, 14),
            p_in: 0.8,
        },
        7,
    );
    let cfg = QcConfig::new(0.5, 6);
    let mut group = c.benchmark_group("engine_pruning_ablation");
    group.sample_size(10);
    for (name, flags) in engine_flag_variants() {
        group.bench_with_input(BenchmarkId::new("coverage", name), &flags, |b, &f| {
            b.iter(|| {
                Miner::new(&pg.graph, cfg)
                    .with_prune(f)
                    .coverage()
                    .covered
                    .len()
            })
        });
    }
    group.finish();
}

fn bench_scpm_theorem_ablation(c: &mut Criterion) {
    let dataset = small_dblp_like(0.02, 77);
    let g = &dataset.graph;
    let base = ScpmParams::new(5, 0.5, 11)
        .with_eps_min(0.1)
        .with_delta_min(1.0)
        .with_top_k(5)
        .with_max_attrs(3);
    let variants: Vec<(&str, ScpmPruneFlags)> = vec![
        ("thm3_4_5_on", ScpmPruneFlags::default()),
        (
            "no_thm3_vertex_pruning",
            ScpmPruneFlags {
                vertex_pruning: false,
                ..Default::default()
            },
        ),
        (
            "no_thm4_eps_bound",
            ScpmPruneFlags {
                eps_pruning: false,
                ..Default::default()
            },
        ),
        (
            "no_thm5_delta_bound",
            ScpmPruneFlags {
                delta_pruning: false,
                ..Default::default()
            },
        ),
    ];
    let mut group = c.benchmark_group("scpm_theorem_ablation");
    group.sample_size(10);
    for (name, flags) in variants {
        let mut params = base.clone();
        params.prune = flags;
        group.bench_with_input(BenchmarkId::new("run", name), &params, |b, p| {
            b.iter(|| Scpm::new(g, p.clone()).run())
        });
    }
    group.finish();
}

/// DFS prefix-class enumeration vs level-wise Apriori-style enumeration
/// of the attribute lattice (identical output; different traversal and
/// pruning opportunities).
fn bench_lattice_traversal(c: &mut Criterion) {
    let dataset = small_dblp_like(0.02, 77);
    let g = &dataset.graph;
    let params = ScpmParams::new(5, 0.5, 11)
        .with_eps_min(0.1)
        .with_delta_min(1.0)
        .with_top_k(5)
        .with_max_attrs(3);
    let mut group = c.benchmark_group("attribute_lattice_traversal");
    group.sample_size(10);
    group.bench_function("dfs_prefix_class", |b| {
        b.iter(|| Scpm::new(g, params.clone()).run())
    });
    group.bench_function("levelwise_apriori", |b| {
        b.iter(|| Scpm::new(g, params.clone()).run_levelwise())
    });
    group.finish();
}

/// SCORP (complete enumeration, Theorem 4 only) vs SCPM (top-k + δ
/// pruning) — the gap the VLDB'12 extensions buy over the MLG'10 system.
fn bench_scorp_vs_scpm(c: &mut Criterion) {
    let dataset = small_dblp_like(0.02, 77);
    let g = &dataset.graph;
    let params = ScpmParams::new(5, 0.5, 11)
        .with_eps_min(0.1)
        .with_delta_min(1.0)
        .with_top_k(5)
        .with_max_attrs(3);
    let mut group = c.benchmark_group("scorp_vs_scpm");
    group.sample_size(10);
    group.bench_function("scpm_topk", |b| {
        b.iter(|| Scpm::new(g, params.clone()).run())
    });
    group.bench_function("scorp_complete", |b| {
        b.iter(|| Scorp::new(g, params.clone()).run())
    });
    group.finish();
}

/// Sorted-slice vs packed-bitset hot path: end-to-end coverage searches
/// (the A/B the `--repr` switch and `exp_perf` expose) plus the raw
/// kernels underneath (edge tests, external-degree counting, incremental
/// subgraph projection).
fn bench_representation_kernels(c: &mut Criterion) {
    let pg = PlantedGraph::generate(
        &PlantedCommunityConfig {
            n: 600,
            background: BackgroundModel::Uniform { mean_degree: 3.0 },
            num_communities: 6,
            community_size: (8, 14),
            p_in: 0.8,
        },
        7,
    );
    let cfg = QcConfig::new(0.5, 6);
    let mut group = c.benchmark_group("representation");
    group.sample_size(10);
    for (name, repr) in [
        ("slice", Representation::Slice),
        ("bitset", Representation::Bitset),
    ] {
        group.bench_with_input(BenchmarkId::new("coverage", name), &repr, |b, &r| {
            b.iter(|| {
                Miner::new(&pg.graph, cfg)
                    .with_repr(r)
                    .coverage()
                    .covered
                    .len()
            })
        });
    }

    // Raw kernels over one mid-sized induced subgraph.
    let set: Vec<u32> = (0..300u32).collect();
    let sub = InducedSubgraph::extract(&pg.graph, &set);
    let adj = BitAdjacency::from_csr(&sub.graph);
    let cands: Vec<u32> = (0..sub.num_vertices() as u32).step_by(2).collect();
    let cand_bits = VertexBitset::from_sorted(sub.num_vertices(), &cands);
    group.bench_function("exdeg/slice_merge", |b| {
        b.iter(|| {
            (0..sub.num_vertices() as u32)
                .map(|v| intersect_count(sub.graph.neighbors(v), &cands))
                .sum::<usize>()
        })
    });
    group.bench_function("exdeg/bitset_popcount", |b| {
        b.iter(|| {
            (0..sub.num_vertices() as u32)
                .map(|v| adj.degree_within(v, &cand_bits))
                .sum::<usize>()
        })
    });
    group.bench_function("project/from_parent", |b| {
        b.iter(|| sub.project(&cand_bits).num_vertices())
    });
    group.bench_function("project/global_extract", |b| {
        b.iter(|| InducedSubgraph::extract(&pg.graph, &cands).num_vertices())
    });
    group.finish();
}

/// Fused vs unfused A/B on raw packed rows: each fused single-pass kernel
/// against the compose-of-primitives pipeline it replaced (materialize,
/// then reduce), at a dense and a sparse occupancy. The gathered variant
/// is measured against the full-stride fused kernel to isolate what the
/// active-word lists buy on sparse data.
fn bench_fused_kernels(c: &mut Criterion) {
    const N: usize = 4096; // 64 words per set — several summary groups
    let dense: Vec<u32> = (0..N as u32).step_by(2).collect();
    let sparse: Vec<u32> = (0..N as u32).step_by(97).collect();
    let occupancies = [("dense", &dense), ("sparse", &sparse)];
    let other = VertexBitset::from_sorted(N, &(0..N as u32).step_by(3).collect::<Vec<_>>());

    let mut group = c.benchmark_group("fused-kernels");
    group.sample_size(20);
    for (occ, set) in occupancies {
        let bits = VertexBitset::from_sorted(N, set);
        let mut active = Vec::new();
        bits.active_words_into(&mut active);

        // intersect_popcount vs intersect-then-count.
        group.bench_with_input(
            BenchmarkId::new("intersect_popcount/fused", occ),
            &bits,
            |b, bits| b.iter(|| intersect_popcount(bits.words(), other.words())),
        );
        group.bench_with_input(
            BenchmarkId::new("intersect_popcount/unfused", occ),
            &bits,
            |b, bits| {
                b.iter(|| {
                    let mut tmp = bits.clone();
                    tmp.intersect_with(&other);
                    tmp.count()
                })
            },
        );

        // and_not_count vs difference-then-count.
        group.bench_with_input(
            BenchmarkId::new("and_not_count/fused", occ),
            &bits,
            |b, bits| b.iter(|| and_not_count(bits.words(), other.words())),
        );
        group.bench_with_input(
            BenchmarkId::new("and_not_count/unfused", occ),
            &bits,
            |b, bits| {
                b.iter(|| {
                    let mut tmp = bits.clone();
                    tmp.difference_with(&other);
                    tmp.count()
                })
            },
        );

        // Blocked early-exit subset test vs counting the difference.
        group.bench_with_input(
            BenchmarkId::new("subset/fused_early_exit", occ),
            &bits,
            |b, bits| b.iter(|| difference_is_empty(bits.words(), other.words())),
        );
        group.bench_with_input(
            BenchmarkId::new("subset/unfused_count", occ),
            &bits,
            |b, bits| b.iter(|| and_not_count(bits.words(), other.words()) == 0),
        );

        // Gathered (active-word list) vs full-stride fused popcount.
        group.bench_with_input(
            BenchmarkId::new("gather/active_words", occ),
            &(&bits, &active),
            |b, (bits, active)| {
                b.iter(|| gather_intersect_popcount(other.words(), bits.words(), active))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("gather/full_stride", occ),
            &bits,
            |b, bits| b.iter(|| intersect_popcount(other.words(), bits.words())),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_engine_prunings,
    bench_scpm_theorem_ablation,
    bench_lattice_traversal,
    bench_scorp_vs_scpm,
    bench_representation_kernels,
    bench_fused_kernels
);
criterion_main!(benches);
