//! Case study on a DBLP-like collaboration network (§4.1.1 of the paper).
//!
//! ```text
//! cargo run --release --example collaboration [scale]
//! ```
//!
//! Vertices are authors, edges are co-authorships, attributes are stemmed
//! title terms, and attribute sets define research topics. The example
//! mirrors Table 2: top attribute sets by support σ, by structural
//! correlation ε, and by normalized structural correlation δ_lb — showing
//! that frequent generic terms (`base`, `system`, ...) correlate poorly
//! with community formation while topical terms (`grid*`, `search*`, ...)
//! correlate strongly.

use scpm_core::report::{largest_patterns, render_summary, render_top_tables};
use scpm_core::{Scpm, ScpmParams};
use scpm_datasets::dblp_like;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.05);
    let dataset = dblp_like(scale, 42);
    let graph = &dataset.graph;
    println!(
        "DBLP-like network (scale {scale}): {} authors, {} co-authorships, {} terms, {} planted groups",
        graph.num_vertices(),
        graph.num_edges(),
        graph.num_attributes(),
        dataset.communities.len()
    );

    // The paper uses σmin = 400 on 108k authors; scale it proportionally.
    let sigma_min = ((400.0 * scale).round() as usize).max(8);
    // Paper parameters: min_size = 10, γmin = 0.5, attribute sets of size
    // ≥ 2 reported. At small scales the planted groups keep their real
    // size, so min_size stays as in the paper.
    let params = ScpmParams::new(sigma_min, 0.5, 10)
        .with_min_attrs(1)
        .with_max_attrs(3)
        .with_top_k(5);
    println!(
        "parameters: σmin={sigma_min} γmin=0.5 min_size=10 (examining attribute sets up to size 3)\n"
    );

    let scpm = Scpm::new(graph, params);
    let result = scpm.run();

    println!("{}", render_top_tables(graph, &result, 10));

    println!("largest structural correlation patterns (cf. Figure 3(b)):");
    for p in largest_patterns(&result, 3) {
        println!(
            "  {} — community of {} authors, γ = {:.2}",
            graph.format_attr_set(&p.attrs),
            p.clique.size(),
            p.clique.min_degree_ratio
        );
    }

    println!("\n{}", render_summary(&result));
}
