//! Case study on a CiteSeer-like citation network (§4.1.3 of the paper).
//!
//! ```text
//! cargo run --release --example citation [scale]
//! ```
//!
//! Vertices are papers, edges are citations, attributes are abstract
//! terms; attribute sets are topics and quasi-cliques are groups of
//! related work. Mirrors Table 4 and additionally demonstrates the
//! simulation vs. analytical null models on the generated graph
//! (cf. Figure 9).

use scpm_core::nullmodel::simulate_expected;
use scpm_core::report::{largest_patterns, render_summary, render_top_tables};
use scpm_core::{Scpm, ScpmParams};
use scpm_datasets::citeseer_like;
use scpm_quasiclique::QcConfig;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.02);
    let dataset = citeseer_like(scale, 2718);
    let graph = &dataset.graph;
    println!(
        "CiteSeer-like network (scale {scale}): {} papers, {} citations, {} terms",
        graph.num_vertices(),
        graph.num_edges(),
        graph.num_attributes()
    );

    // Paper: σmin = 2000 on 294k papers, min_size = 5, γmin = 0.5.
    let sigma_min = ((2000.0 * scale).round() as usize).max(10);
    let params = ScpmParams::new(sigma_min, 0.5, 5)
        .with_min_attrs(1)
        .with_max_attrs(3)
        .with_top_k(5);
    println!("parameters: σmin={sigma_min} γmin=0.5 min_size=5\n");

    let scpm = Scpm::new(graph, params);
    let result = scpm.run();

    println!("{}", render_top_tables(graph, &result, 10));

    println!("largest groups of related work (cf. Figure 6(b)):");
    for p in largest_patterns(&result, 3) {
        println!(
            "  {} — {} papers, γ = {:.2}",
            graph.format_attr_set(&p.attrs),
            p.clique.size(),
            p.clique.min_degree_ratio
        );
    }

    // Expected structural correlation: simulation vs. analytical bound
    // (Figure 9's two curves).
    println!("\nexpected structural correlation (sim-exp vs max-exp):");
    let cfg = QcConfig::new(0.5, 5);
    let model = scpm.model();
    let n = graph.num_vertices();
    for frac in [0.02, 0.05, 0.1] {
        let sigma = ((n as f64) * frac) as usize;
        let sim = simulate_expected(graph.graph(), &cfg, sigma, 20, 7);
        println!(
            "  σ={sigma:<6} sim-exp={:<10.6} (sd {:.6})  max-exp={:<10.6}",
            sim.mean,
            sim.std_dev,
            model.expected(sigma)
        );
    }

    println!("\n{}", render_summary(&result));
}
