//! Quickstart: reproduce Table 1 of the paper on the Figure 1 example.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds the 11-vertex attributed graph of Figure 1, runs SCPM with the
//! paper's parameters (σmin = 3, γmin = 0.6, min_size = 4, εmin = 0.5) and
//! prints the resulting structural correlation patterns — the seven rows of
//! Table 1.

use scpm_core::report::{render_patterns, render_summary};
use scpm_core::{Scpm, ScpmParams};
use scpm_graph::figure1::{figure1, paper_label};

fn main() {
    let graph = figure1();
    println!(
        "Figure 1 graph: {} vertices, {} edges, {} attributes",
        graph.num_vertices(),
        graph.num_edges(),
        graph.num_attributes()
    );

    let params = ScpmParams::new(3, 0.6, 4).with_eps_min(0.5);
    let scpm = Scpm::new(&graph, params);
    let result = scpm.run();

    println!("\nStructural correlation of key attribute sets:");
    let engine = scpm.engine();
    for attrs in [vec!["A"], vec!["C"], vec!["A", "B"]] {
        let ids: Vec<u32> = attrs.iter().map(|n| graph.attr_id(n).unwrap()).collect();
        let vertices = graph.vertices_with_all(&ids);
        let out = engine.epsilon(&vertices, None);
        println!(
            "  ε({}) = {:.2}  (covers {} of {} vertices)",
            graph.format_attr_set(&ids),
            out.epsilon,
            out.covered.len(),
            vertices.len()
        );
    }

    println!("\nTable 1 — structural correlation patterns (0-based vertex ids):");
    println!("{}", render_patterns(&graph, &result, 20));

    println!("Pattern vertex sets in the paper's 1-based labels:");
    for p in &result.patterns {
        let labels: Vec<String> = p
            .clique
            .vertices
            .iter()
            .map(|&v| paper_label(v).to_string())
            .collect();
        println!(
            "  ({}, {{{}}})",
            graph.format_attr_set(&p.attrs),
            labels.join(",")
        );
    }

    println!("\n{}", render_summary(&result));
}
