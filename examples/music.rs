//! Case study on a LastFm-like social music network (§4.1.2 of the paper).
//!
//! ```text
//! cargo run --release --example music [scale]
//! ```
//!
//! Vertices are users, edges are friendships, attributes are listened
//! artists, and an attribute set is a musical taste. Mirrors Table 3:
//! mainstream artists (Radiohead, Coldplay, ...) have huge support but
//! unremarkable normalized correlation, while niche tastes
//! (`S Stevens*`-style planted topics) induce communities far above
//! expectation.

use scpm_core::report::{largest_patterns, render_summary, render_top_tables};
use scpm_core::{Scpm, ScpmParams};
use scpm_datasets::lastfm_like;

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.02);
    let dataset = lastfm_like(scale, 1337);
    let graph = &dataset.graph;
    println!(
        "LastFm-like network (scale {scale}): {} users, {} friendships, {} artists",
        graph.num_vertices(),
        graph.num_edges(),
        graph.num_attributes()
    );

    // Paper: σmin = 27,000 on 272k users (≈ 10%), min_size = 5, γmin = 0.5.
    // Keep a small absolute floor so the scaled-down run still has
    // candidates below the mainstream tier.
    let sigma_min = ((27_000.0 * scale).round() as usize).max(10);
    let params = ScpmParams::new(sigma_min, 0.5, 5)
        .with_min_attrs(1)
        .with_max_attrs(3)
        .with_top_k(5);
    println!("parameters: σmin={sigma_min} γmin=0.5 min_size=5\n");

    let scpm = Scpm::new(graph, params);
    let result = scpm.run();

    println!("{}", render_top_tables(graph, &result, 10));

    println!("largest listening communities (cf. Figure 5(b)):");
    for p in largest_patterns(&result, 3) {
        println!(
            "  {} — {} users, γ = {:.2}",
            graph.format_attr_set(&p.attrs),
            p.clique.size(),
            p.clique.min_degree_ratio
        );
    }

    println!("\n{}", render_summary(&result));
}
