//! Ingestion: load an on-disk dataset (edge list + vertex→attribute
//! table) through the full pipeline and mine it.
//!
//! ```text
//! cargo run --release --example ingest [edge_file attr_file]
//! ```
//!
//! With no arguments, the example first *materializes* a small DBLP-style
//! dataset in the interchange shapes real releases use, then ingests it
//! back — so it doubles as a demonstration of the byte-identical
//! round-trip guarantee of `docs/DATASETS.md`. Pass your own files to
//! mine them instead.

use scpm_core::report::{render_summary, render_top_tables};
use scpm_core::{Scpm, ScpmParams};
use scpm_datasets::ingest::{canonicalize_attributes, ingest_files, IngestOptions, SourceFormat};
use scpm_graph::io::{write_attr_table, write_edge_list};
use scpm_graph::snapshot;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (edges, attrs, generated) = match args.as_slice() {
        [e, a] => (e.into(), a.into(), None),
        _ => {
            // Materialize a synthetic DBLP-style dataset on disk.
            let dir = std::env::temp_dir().join("scpm_example_ingest");
            std::fs::create_dir_all(&dir).expect("create temp dir");
            let dataset = scpm_datasets::dblp_like(0.01, 42);
            let e = dir.join("dblp.edges");
            let a = dir.join("dblp.attrs");
            write_edge_list(
                dataset.graph.graph(),
                std::fs::File::create(&e).expect("create edge file"),
            )
            .expect("write edges");
            write_attr_table(
                &dataset.graph,
                std::fs::File::create(&a).expect("create attr file"),
            )
            .expect("write attrs");
            println!("materialized synthetic DBLP at {}", dir.display());
            (e, a, Some(dataset.graph))
        }
    };

    // Parse + normalize; the report shows what normalization did.
    let out = ingest_files(
        SourceFormat::EdgeList,
        &edges,
        Some(&attrs),
        &IngestOptions::default(),
    )
    .unwrap_or_else(|e| {
        eprintln!("ingest failed: {e}");
        std::process::exit(1);
    });
    println!("\n{}", out.report);

    // The byte-identical guarantee, when we know the source graph.
    if let Some(original) = generated {
        let reference = canonicalize_attributes(&original);
        assert_eq!(
            snapshot::encode(&out.graph).as_ref(),
            snapshot::encode(&reference).as_ref(),
        );
        println!("ingested snapshot is byte-identical to the in-memory graph\n");
    }

    // Mine structural correlation patterns from the ingested graph.
    let params = ScpmParams::new(8, 0.5, 6)
        .with_eps_min(0.1)
        .with_top_k(3)
        .with_max_attrs(2);
    let result = Scpm::new(&out.graph, params).run();
    println!("{}", render_top_tables(&out.graph, &result, 5));
    println!("{}", render_summary(&result));
}
