//! Pruning ablation walkthrough: what each rule of the SCPM stack buys.
//!
//! ```text
//! cargo run --release --example pruning_ablation
//! ```
//!
//! Runs the same mining task with individual pruning rules disabled and
//! prints the work counters — the qualitative version of the ablation
//! benches in `crates/bench`. Results are identical across rows (the
//! rules are semantically inert, enforced by the test suite); only the
//! visited-node counts and wall time move.

use scpm_core::{Scpm, ScpmParams, ScpmPruneFlags};
use scpm_datasets::small_dblp_like;
use scpm_quasiclique::PruneFlags;

fn run(name: &str, mut params: ScpmParams, scpm_flags: ScpmPruneFlags, qc_flags: PruneFlags) {
    params.prune = scpm_flags;
    params.qc_prune = qc_flags;
    let dataset = small_dblp_like(0.02, 7);
    let scpm = Scpm::new(&dataset.graph, params);
    let result = scpm.run();
    let s = result.stats;
    println!(
        "{name:<22} sets={:<5} qualified={:<4} patterns={:<5} qc_nodes={:<9} elapsed={:?}",
        s.attribute_sets_examined,
        s.attribute_sets_qualified,
        result.patterns.len(),
        s.qc_nodes_coverage + s.qc_nodes_topk,
        s.elapsed
    );
}

fn main() {
    let base = ScpmParams::new(8, 0.5, 8)
        .with_eps_min(0.15)
        .with_delta_min(1.0)
        .with_top_k(3)
        .with_max_attrs(2);

    println!("== attribute-level rules (Theorems 3-5) ==");
    run(
        "all on",
        base.clone(),
        ScpmPruneFlags::default(),
        PruneFlags::default(),
    );
    run(
        "no Theorem 3",
        base.clone(),
        ScpmPruneFlags {
            vertex_pruning: false,
            ..Default::default()
        },
        PruneFlags::default(),
    );
    run(
        "no Theorem 4",
        base.clone(),
        ScpmPruneFlags {
            eps_pruning: false,
            ..Default::default()
        },
        PruneFlags::default(),
    );
    run(
        "no Theorem 5",
        base.clone(),
        ScpmPruneFlags {
            delta_pruning: false,
            ..Default::default()
        },
        PruneFlags::default(),
    );

    println!("\n== quasi-clique engine rules (Quick [10]) ==");
    for (name, flags) in [
        ("all on", PruneFlags::default()),
        (
            "no lookahead",
            PruneFlags {
                lookahead: false,
                ..PruneFlags::default()
            },
        ),
        (
            "no size bounds",
            PruneFlags {
                bounds: false,
                critical: false,
                ..PruneFlags::default()
            },
        ),
        (
            "no critical vertex",
            PruneFlags {
                critical: false,
                ..PruneFlags::default()
            },
        ),
        (
            "no cover vertex",
            PruneFlags {
                cover_vertex: false,
                ..PruneFlags::default()
            },
        ),
        (
            "no diameter-2",
            PruneFlags {
                diameter2: false,
                ..PruneFlags::default()
            },
        ),
    ] {
        run(name, base.clone(), ScpmPruneFlags::default(), flags);
    }
}
