//! Null-model comparison: the analytical bound of Theorem 2 versus the
//! exact hypergeometric variant versus simulation (the paper's Figure 4).
//!
//! ```text
//! cargo run --release --example nullmodels
//! ```
//!
//! Generates a small DBLP-like collaboration network, sweeps the support
//! axis, and prints the three expected-structural-correlation curves plus
//! an empirical p-value for a real attribute set — demonstrating that
//! (i) `max-exp` upper-bounds `sim-exp` with a similar growth shape (the
//! paper's argument for using `δ_lb`), and (ii) real topic attribute sets
//! are far outside the null distribution.

use scpm_core::{AnalyticalModel, ExactModel, Scpm, ScpmParams, SimulationModel};
use scpm_datasets::dblp_like;
use scpm_quasiclique::QcConfig;

fn main() {
    let dataset = dblp_like(0.02, 42);
    let graph = &dataset.graph;
    let g = graph.graph();
    println!(
        "DBLP-like graph: {} vertices, {} edges, {} attributes",
        graph.num_vertices(),
        graph.num_edges(),
        graph.num_attributes()
    );

    let cfg = QcConfig::new(0.5, 5);
    let analytical = AnalyticalModel::new(g, &cfg);
    let exact = ExactModel::new(g, &cfg);
    let sim = SimulationModel::new(g, cfg, 30, 7);

    println!("\nExpected structural correlation by support (Figure 4 shape):");
    println!(
        "{:>8}  {:>12}  {:>12}  {:>12}  {:>10}",
        "σ", "max-exp", "exact-exp", "sim-exp", "sim-std"
    );
    let n = g.num_vertices();
    // The paper's Figure 4 sweeps σ up to ~10% of |V|; far beyond that the
    // simulation must *disprove* quasi-clique membership for most of the
    // graph, which is the expensive direction of the search.
    for i in 1..=8 {
        let sigma = n * i / 80;
        let s = sim.expected(sigma);
        println!(
            "{:>8}  {:>12.6}  {:>12.6}  {:>12.6}  {:>10.6}",
            sigma,
            analytical.expected(sigma),
            exact.expected(sigma),
            s.mean,
            s.std_dev
        );
    }

    // Mine, then hold the best attribute set against the null model.
    let params = ScpmParams::new(20, 0.5, 5)
        .with_eps_min(0.05)
        .with_top_k(3)
        .with_max_attrs(2);
    let scpm = Scpm::new(graph, params);
    let result = scpm.run();
    println!("\nSignificance of the top-δ attribute sets:");
    for report in result.top_by_delta(3) {
        let p = sim.p_value(report.epsilon, report.support);
        println!(
            "  {:<32} σ={:<6} ε={:.3} δ_lb={:<12.1} p={:.4}",
            graph.format_attr_set(&report.attrs),
            report.support,
            report.epsilon,
            report.delta_lb,
            p
        );
    }
    println!(
        "\n(δ_lb ≫ 1 and p ≈ 1/(runs+1) together say: the coverage of these \
         sets is unexplainable by support alone.)"
    );
}
